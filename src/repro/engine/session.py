"""The shared per-slot solve engine.

Every algorithm stack in this library — the prediction-free
regularized online algorithm, the five predictive controllers, the
N-tier online loop and the LCP-M baseline — makes one decision per
time slot from (a) per-slot input data and (b) carried state (the
previous decision, warm-start vectors, reusable subproblem structure,
pending block plans).  This module owns that lifecycle so it is
implemented exactly once:

* :class:`SlotData` — one slot's inputs (workload + prices), the unit
  of the streaming API;
* :class:`Controller` — the protocol an algorithm implements:
  ``make_state(source)`` builds the carried state,
  ``decide(state, t, slot)`` makes one slot's decision;
* :class:`SolveSession` — the driver: feeds slots to the controller,
  times every step, drains the state's :class:`~repro.engine.stats.StatsProbe`
  into per-step :class:`~repro.engine.stats.StepStats`, and assembles
  the trajectory (with ``run_stats`` attached).

Streaming
---------
``session.step(SlotData(...))`` accepts slot data one slot at a time,
so a deployment can drive the engine from live measurements without a
full :class:`~repro.model.instance.Instance` ever existing::

    session = SolveSession(RegularizedOnline(config), network)
    for slot in telemetry_feed():
        decision = session.step(SlotData(slot.demand, slot.energy, slot.bw))

``session.run(instance)`` is a thin wrapper that feeds the instance's
slots into :meth:`SolveSession.step` — both paths produce bitwise
identical trajectories (test-asserted).  Prediction-free controllers
accept a bare network as ``source``; predictive controllers (which
query forecast oracles) and LCP-M (which tie-breaks prices over the
horizon) need the instance.
"""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable

import numpy as np

from repro.engine.stats import RunStats, StatsProbe, StepStats, publish_step_stats
from repro.model.allocation import Trajectory
from repro.model.instance import Instance
from repro.obs import telemetry as obs_telemetry
from repro.obs import tracing as obs_tracing
from repro.util.timing import Timer


class SlotData:
    """One slot's inputs: workload and allocation prices.

    ``tier2_price`` carries the per-upper-node prices (``a_{it}`` in
    the two-tier model; the flattened node prices in the N-tier model)
    and ``link_price`` the per-edge/link prices ``c_{et}``.

    Each field is validated on construction: NaN/inf or negative
    entries raise a :class:`ValueError` naming the offending field
    instead of propagating into the solver as an opaque failure.
    Shape compatibility with a concrete network is a separate check
    (:meth:`validate`) because a bare ``SlotData`` does not know its
    topology.
    """

    __slots__ = ("workload", "tier2_price", "link_price")

    def __init__(
        self,
        workload: np.ndarray,
        tier2_price: np.ndarray,
        link_price: np.ndarray,
    ) -> None:
        self.workload = self._field("workload", workload)
        self.tier2_price = self._field("tier2_price", tier2_price)
        self.link_price = self._field("link_price", link_price)

    @staticmethod
    def _field(name: str, arr) -> np.ndarray:
        arr = np.asarray(arr, dtype=float)
        if arr.ndim != 1:
            raise ValueError(
                f"SlotData.{name} must be 1-D (one slot), got shape {arr.shape}"
            )
        if not np.all(np.isfinite(arr)):
            bad = int(np.count_nonzero(~np.isfinite(arr)))
            raise ValueError(f"SlotData.{name} contains {bad} non-finite entries")
        if arr.size and float(arr.min()) < 0:
            raise ValueError(
                f"SlotData.{name} must be non-negative (min entry {float(arr.min())})"
            )
        return arr

    def validate(self, network) -> "SlotData":
        """Check the field shapes against a two-tier network.

        Returns ``self`` so sources can validate inline; raises a
        :class:`ValueError` naming the mismatched field otherwise.
        """
        expected = (
            ("workload", self.workload, network.n_tier1),
            ("tier2_price", self.tier2_price, network.n_tier2),
            ("link_price", self.link_price, network.n_edges),
        )
        for name, arr, size in expected:
            if arr.shape != (size,):
                raise ValueError(
                    f"SlotData.{name} has shape {arr.shape}, expected ({size},) "
                    f"for {network!r}"
                )
        return self

    @classmethod
    def from_instance(cls, instance: Any, t: int) -> "SlotData":
        """Extract slot ``t`` of a two-tier or N-tier instance."""
        upper = getattr(instance, "tier2_price", None)
        if upper is None:
            upper = instance.node_price
        return cls(instance.workload[t], upper[t], instance.link_price[t])

    def as_instance(self, network) -> Instance:
        """This slot as a one-slot two-tier :class:`Instance`.

        Used by controllers that repair planned decisions against the
        realized slot data (``topup_repair`` operates on instances).
        """
        return Instance(
            network=network,
            workload=self.workload[None, :],
            tier2_price=self.tier2_price[None, :],
            link_price=self.link_price[None, :],
        )

    def __repr__(self) -> str:
        return f"SlotData(J={self.workload.shape[0]})"


@runtime_checkable
class Controller(Protocol):
    """The per-slot decision protocol every algorithm implements.

    ``make_state(source, initial=None)`` builds the carried state from
    an instance (or, for prediction-free controllers, a bare network).
    The state owns everything reused across slots: subproblem
    structure, the previously applied decision, warm-start vectors,
    pending block plans, and a ``probe`` attribute
    (:class:`~repro.engine.stats.StatsProbe`) that inner solves record
    into.

    ``decide(state, t, slot)`` makes the slot-``t`` decision and
    advances the state.  The return value is an
    :class:`~repro.model.allocation.Allocation` for two-tier
    controllers; N-tier controllers return their own step type and
    provide ``assemble`` to stack steps into a trajectory.
    """

    name: str

    def make_state(self, source: Any, initial: Any = None) -> Any: ...

    def decide(self, state: Any, t: int, slot: SlotData) -> Any: ...


class SolveSession:
    """Drives a :class:`Controller` over a stream of slots.

    Parameters
    ----------
    controller:
        The algorithm to drive.
    source:
        What the controller's state is built from: an instance, or a
        bare network for prediction-free controllers.
    initial:
        The decision at slot ``-1`` (controller-specific default,
        usually all-zero).

    Example
    -------
    >>> session = SolveSession(algo, instance)
    >>> traj = session.run(instance)          # batch
    >>> traj.run_stats.describe()             # per-step solver stats
    """

    def __init__(self, controller: Controller, source: Any, initial: Any = None) -> None:
        self.controller = controller
        self.source = source
        self.state = controller.make_state(source, initial=initial)
        self.t = 0
        self._steps: list = []
        self._step_stats: "list[StepStats]" = []
        # The state owns every structure reused across slots — the
        # subproblem's compiled convex programs (constraint matrix,
        # fused objective arrays, barrier workspace, phase-I point, see
        # RegularizedSubproblem.build) and warm-start vectors — so a
        # long-lived session amortizes all of it; only per-slot data
        # (b, prices, regularizer anchors) is rewritten per step.  The
        # probe is fixed for the state's lifetime; resolve it once.
        self._probe: "StatsProbe | None" = getattr(self.state, "probe", None)

    # ------------------------------------------------------------------
    def step(self, slot: SlotData) -> Any:
        """Decide one slot from streamed data and advance the session."""
        probe = self._probe
        span = obs_tracing.span(
            "engine.step", t=self.t, controller=self.controller.name
        )
        with span:
            with Timer() as timer:
                decision = self.controller.decide(self.state, self.t, slot)
            records = probe.drain() if probe is not None else []
            stats = StepStats.from_records(self.t, timer.elapsed, records)
            span.set(
                n_solves=stats.n_solves,
                newton_iters=stats.newton_iters,
                warm_used=stats.warm_hits > 0,
                fallback=stats.fallbacks > 0,
            )
        publish_step_stats(stats)
        # Stream the updated registry at the ambient sink's cadence
        # (one module-global None check when telemetry is off), so
        # long batch runs are observable mid-flight, not just at exit.
        obs_telemetry.autoflush()
        self._step_stats.append(stats)
        self._steps.append(decision)
        self.t += 1
        return decision

    def apply(self, slot: SlotData, decision: Any) -> Any:
        """Advance one slot with an externally-decided allocation.

        The serve runtime calls this when a fallback (held allocation,
        greedy cover) produced the slot's decision instead of the
        controller: the decision is recorded in the trajectory and the
        controller's carried state is told about it through its
        optional ``observe(state, t, slot, decision)`` hook so the next
        primary solve anchors at what was actually applied.  Controllers
        without the hook get the generic treatment: ``state.prev`` is
        replaced and any warm-start vector is dropped (it seeded the
        solve of a decision that was never applied).
        """
        with obs_tracing.span(
            "engine.apply", t=self.t, controller=self.controller.name
        ):
            observe = getattr(self.controller, "observe", None)
            if observe is not None:
                observe(self.state, self.t, slot, decision)
            else:
                if hasattr(self.state, "prev"):
                    self.state.prev = decision
                if getattr(self.state, "warm", None) is not None:
                    self.state.warm = None
        stats = StepStats.from_records(self.t, 0.0, [])
        publish_step_stats(stats)
        self._step_stats.append(stats)
        self._steps.append(decision)
        self.t += 1
        return decision

    def rebuild(self, initial: Any = None) -> None:
        """Replace the carried state with a freshly-built one.

        Used by the serve runtime after an abandoned (timed-out) solve:
        the abandoned worker may still be mutating the old state's
        scratch buffers, so the session discards it and rebuilds from
        the last applied decision.  Solver results are unchanged — the
        compiled structures are deterministic functions of the network
        and config — only warm-start amortization restarts.
        """
        self.state = self.controller.make_state(self.source, initial=initial)
        self._probe = getattr(self.state, "probe", None)

    # ------------------------------------------------------------------
    # Checkpoint hooks (see repro.serve.checkpoint)
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        """Snapshot the session for checkpoint/resume.

        Requires the controller to implement ``export_state(state) ->
        dict`` (a flat mapping of arrays/scalars).  The snapshot holds
        everything :meth:`resume` needs to continue the run with a
        bitwise-identical future trajectory: the step index, the
        controller's carried state, the decisions taken so far and
        their per-step statistics.
        """
        export = getattr(self.controller, "export_state", None)
        if export is None:
            raise TypeError(
                f"controller {type(self.controller).__name__} "
                f"({self.controller.name!r}) does not support state export "
                "(no export_state hook); checkpointing is unavailable"
            )
        return {
            "t": self.t,
            "controller": export(self.state),
            "steps": list(self._steps),
            "step_stats": list(self._step_stats),
        }

    @classmethod
    def resume(cls, controller: Controller, source: Any, snapshot: dict) -> "SolveSession":
        """Rebuild a session from an :meth:`export_state` snapshot.

        The controller must implement ``restore_state(source, snapshot)
        -> state``, the inverse of its ``export_state``.
        """
        restore = getattr(controller, "restore_state", None)
        if restore is None:
            raise TypeError(
                f"controller {type(controller).__name__} "
                f"({controller.name!r}) does not support state restore "
                "(no restore_state hook)"
            )
        session = cls.__new__(cls)
        session.controller = controller
        session.source = source
        session.state = restore(source, snapshot["controller"])
        session.t = int(snapshot["t"])
        session._steps = list(snapshot["steps"])
        session._step_stats = list(snapshot["step_stats"])
        session._probe = getattr(session.state, "probe", None)
        return session

    # ------------------------------------------------------------------
    # Persistent-cache hooks (see repro.cache; blob format is the
    # export_state serialization, stored through repro.serve.checkpoint)
    # ------------------------------------------------------------------
    def save_to_cache(self, store: Any, key: str) -> None:
        """Persist this session's :meth:`export_state` snapshot under ``key``.

        ``store`` is a :class:`~repro.cache.store.SolverStateStore`;
        the blob is a valid serve checkpoint, so a cached session can
        equally be resumed by the serve runtime.
        """
        store.put_state(
            key, self.export_state(), controller_name=self.controller.name
        )

    @classmethod
    def resume_from_cache(
        cls, controller: Controller, source: Any, store: Any, key: str
    ) -> "SolveSession | None":
        """Rebuild a session from a cached snapshot, or ``None`` on a miss.

        A hit continues bitwise-identically to the session that called
        :meth:`save_to_cache` (same contract as checkpoint resume); a
        miss — including a corrupted blob — returns ``None`` so the
        caller starts cold.
        """
        snapshot = store.get_state(key)
        if snapshot is None:
            return None
        name = snapshot.get("controller_name", "")
        if name and name != controller.name:
            return None
        return cls.resume(controller, source, snapshot)

    def run(self, instance: Any = None) -> Any:
        """Feed every slot of ``instance`` through :meth:`step`.

        With no argument, the session's ``source`` must be the
        instance.  Returns the assembled trajectory with ``run_stats``
        attached.
        """
        instance = self.source if instance is None else instance
        horizon = getattr(instance, "horizon", None)
        if horizon is None:
            raise ValueError(
                "run() needs an instance (got a bare network); "
                "feed slots through step() instead"
            )
        for t in range(self.t, horizon):
            self.step(SlotData.from_instance(instance, t))
        return self.trajectory()

    # ------------------------------------------------------------------
    @property
    def stats(self) -> RunStats:
        """Per-step statistics for the steps taken so far."""
        return RunStats(list(self._step_stats))

    @property
    def step_stats(self) -> "list[StepStats]":
        """The per-step statistics list itself (read-only use).

        The sharded serve runtime reads the last entry after every
        slot to ship the shard's solver work to the coordinator, which
        folds the per-shard entries into the merged report's
        ``run_stats``.
        """
        return list(self._step_stats)

    def trajectory(self) -> Any:
        """Assemble the steps taken so far into a trajectory.

        Uses the controller's ``assemble`` hook when it has one
        (N-tier), otherwise stacks the allocations into a two-tier
        :class:`~repro.model.allocation.Trajectory`.  The returned
        object carries the session's :class:`RunStats` as
        ``run_stats``.
        """
        assemble = getattr(self.controller, "assemble", None)
        if assemble is not None:
            traj = assemble(self._steps)
        else:
            traj = Trajectory.from_steps(self._steps)
        traj.run_stats = self.stats
        return traj


def source_network(source: Any):
    """The network of an instance-or-network ``source`` argument."""
    return getattr(source, "network", source)
