"""Per-step solver statistics collected by the solve engine.

Every controller driven through a
:class:`~repro.engine.session.SolveSession` carries a
:class:`StatsProbe` in its state; the subproblem/LP layers record one
:class:`SolveRecord` per optimization solve into it, and the session
drains the probe after each ``decide`` into a :class:`StepStats`.  The
accumulated :class:`RunStats` is attached to the finished trajectory
(``trajectory.run_stats``) and surfaced by the evaluation runner and
the ``--stats`` CLI flag.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs import metrics as obs_metrics


@dataclass
class SolveRecord:
    """One optimization solve performed while deciding a slot.

    Attributes
    ----------
    backend:
        Solver backend that produced the result (``"barrier"``,
        ``"trust-constr"``, ``"lp"``).
    newton_iters:
        Newton / trust-region iterations spent (0 for LP solves).
    warm_attempted:
        A warm-start candidate was available for this solve.
    warm_used:
        The warm-start candidate passed the interiority check and
        seeded the solver.
    fallback:
        The requested backend failed and a fallback produced the
        result.
    """

    backend: str = ""
    newton_iters: int = 0
    warm_attempted: bool = False
    warm_used: bool = False
    fallback: bool = False


class StatsProbe:
    """Mutable accumulator the solver layers record into.

    The probe is deliberately dumb: ``record_solve`` appends, ``drain``
    returns everything recorded since the last drain and clears.  It is
    owned by a controller state and drained once per engine step, so
    nested solves (e.g. the regularized chain extending inside an RFHC
    block) attribute their work to the step that triggered them.
    """

    def __init__(self) -> None:
        self._records: list[SolveRecord] = []

    def record_solve(
        self,
        backend: str = "",
        newton_iters: int = 0,
        warm_attempted: bool = False,
        warm_used: bool = False,
        fallback: bool = False,
    ) -> None:
        """Record one completed optimization solve."""
        self._records.append(
            SolveRecord(
                backend=backend,
                newton_iters=int(newton_iters),
                warm_attempted=bool(warm_attempted),
                warm_used=bool(warm_used),
                fallback=bool(fallback),
            )
        )

    def drain(self) -> "list[SolveRecord]":
        """Return the records since the last drain and clear the probe."""
        records, self._records = self._records, []
        return records


@dataclass
class StepStats:
    """Aggregated solver work for one engine step (one time slot)."""

    t: int
    wall_time: float
    n_solves: int = 0
    newton_iters: int = 0
    warm_attempts: int = 0
    warm_hits: int = 0
    fallbacks: int = 0
    backends: "tuple[str, ...]" = ()

    @classmethod
    def from_records(
        cls, t: int, wall_time: float, records: "list[SolveRecord]"
    ) -> "StepStats":
        """Fold the step's solve records into one summary."""
        backends = tuple(sorted({r.backend for r in records if r.backend}))
        return cls(
            t=t,
            wall_time=wall_time,
            n_solves=len(records),
            newton_iters=sum(r.newton_iters for r in records),
            warm_attempts=sum(1 for r in records if r.warm_attempted),
            warm_hits=sum(1 for r in records if r.warm_used),
            fallbacks=sum(1 for r in records if r.fallback),
            backends=backends,
        )

    def to_dict(self) -> dict:
        """JSON-serializable form (checkpoint files, event logs)."""
        return {
            "t": self.t,
            "wall_time": self.wall_time,
            "n_solves": self.n_solves,
            "newton_iters": self.newton_iters,
            "warm_attempts": self.warm_attempts,
            "warm_hits": self.warm_hits,
            "fallbacks": self.fallbacks,
            "backends": list(self.backends),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "StepStats":
        """Inverse of :meth:`to_dict`."""
        return cls(
            t=int(payload["t"]),
            wall_time=float(payload["wall_time"]),
            n_solves=int(payload["n_solves"]),
            newton_iters=int(payload["newton_iters"]),
            warm_attempts=int(payload["warm_attempts"]),
            warm_hits=int(payload["warm_hits"]),
            fallbacks=int(payload["fallbacks"]),
            backends=tuple(payload["backends"]),
        )


def publish_step_stats(stats: StepStats) -> None:
    """Mirror one step's stats into the active metrics registry.

    The engine calls this once per :meth:`SolveSession.step` /
    :meth:`SolveSession.apply`, making the registry the shared
    aggregation point for solver work across every controller — the
    same numbers :class:`StepStats` carries, so the two views never
    disagree.  A no-op while metrics are disabled (the default).
    """
    reg = obs_metrics.active()
    if reg is None:
        return
    reg.counter("engine_steps_total", help="engine steps (slots decided)").inc()
    reg.histogram(
        "engine_step_seconds", help="wall time of one engine step"
    ).observe(stats.wall_time)
    if stats.n_solves:
        reg.counter(
            "engine_solves_total", help="optimization solves run by the engine"
        ).inc(stats.n_solves)
    if stats.newton_iters:
        reg.counter(
            "engine_newton_iters_total",
            help="Newton/trust-region iterations attributed to engine steps",
        ).inc(stats.newton_iters)
    if stats.warm_attempts:
        reg.counter(
            "engine_warm_attempts_total", help="warm-start candidates offered"
        ).inc(stats.warm_attempts)
    if stats.warm_hits:
        reg.counter(
            "engine_warm_hits_total", help="warm starts that seeded the solver"
        ).inc(stats.warm_hits)
    if stats.fallbacks:
        reg.counter(
            "engine_solver_fallbacks_total",
            help="solves served by a fallback backend",
        ).inc(stats.fallbacks)


@dataclass
class RunStats:
    """Per-step statistics accumulated over a whole run.

    Attached to trajectories produced by
    :class:`~repro.engine.session.SolveSession` as ``run_stats``.
    """

    steps: "list[StepStats]" = field(default_factory=list)

    @property
    def n_steps(self) -> int:
        return len(self.steps)

    @property
    def total_time(self) -> float:
        """Total wall-clock seconds spent inside ``decide`` calls."""
        return sum(s.wall_time for s in self.steps)

    @property
    def mean_step_time(self) -> float:
        return self.total_time / len(self.steps) if self.steps else 0.0

    @property
    def max_step_time(self) -> float:
        return max((s.wall_time for s in self.steps), default=0.0)

    @property
    def total_solves(self) -> int:
        return sum(s.n_solves for s in self.steps)

    @property
    def total_newton_iters(self) -> int:
        return sum(s.newton_iters for s in self.steps)

    @property
    def warm_attempts(self) -> int:
        return sum(s.warm_attempts for s in self.steps)

    @property
    def warm_hits(self) -> int:
        return sum(s.warm_hits for s in self.steps)

    @property
    def warm_hit_rate(self) -> float:
        """Fraction of warm-start attempts that seeded the solver."""
        attempts = self.warm_attempts
        return self.warm_hits / attempts if attempts else 0.0

    @property
    def fallbacks(self) -> int:
        return sum(s.fallbacks for s in self.steps)

    @property
    def backends(self) -> "tuple[str, ...]":
        return tuple(sorted({b for s in self.steps for b in s.backends}))

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.n_steps} steps, "
            f"mean {self.mean_step_time * 1e3:.2f} ms / "
            f"max {self.max_step_time * 1e3:.2f} ms per step, "
            f"{self.total_newton_iters} Newton iters, "
            f"warm-start hit rate {self.warm_hit_rate:.0%} "
            f"({self.warm_hits}/{self.warm_attempts}), "
            f"backends: {', '.join(self.backends) or 'n/a'}"
        )
