"""The shared solve-engine layer.

Every algorithm in this library is a :class:`Controller` — a per-slot
decision rule with carried state — driven by a :class:`SolveSession`
that owns the solve lifecycle: subproblem structure reuse, warm-start
state, step timing/statistics and trajectory assembly.  See
:mod:`repro.engine.session` for the streaming API and
:mod:`repro.engine.stats` for the per-step statistics records.

Config surface
--------------
The engine re-exports the one documented config type per algorithm
family:

* :class:`SubproblemConfig` — the two-tier regularized algorithms
  (``RegularizedOnline``, the chain, RFHC/RRHC).
* :class:`NTierConfig` — the N-tier regularized online algorithm.
* :class:`SolverOptions` — the convex-solver backend knobs embedded in
  both.
"""

from repro.core.subproblem import SubproblemConfig
from repro.engine.session import Controller, SlotData, SolveSession, source_network
from repro.engine.stats import RunStats, SolveRecord, StatsProbe, StepStats
from repro.ntier.online import NTierConfig
from repro.solvers.convex import SolverOptions

__all__ = [
    "Controller",
    "SlotData",
    "SolveSession",
    "source_network",
    "RunStats",
    "SolveRecord",
    "StatsProbe",
    "StepStats",
    "SubproblemConfig",
    "NTierConfig",
    "SolverOptions",
]
