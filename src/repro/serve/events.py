"""Structured JSONL event log of a serve run.

Every operationally interesting transition in the serve loop emits one
event: the run starting/ending, each slot being decided (with the path
that served it), deadline misses, fallback engagements, checkpoints
being written, and malformed source records being skipped.  Events are
plain dicts with an ``event`` type, an optional slot index ``t`` and a
free payload, appended to an in-memory list and — when a path is given
— streamed to a JSONL file one line per event, flushed immediately so
a crashed run's log is complete up to the crash.

The log is a *record*, not a dependency: the serve loop never reads it
back.  :func:`read_events` + :func:`summarize_events` (and
:func:`repro.evaluation.reporting.render_serve_events`) turn a log
into the replay/report surface the CLI's ``repro replay`` exposes.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs import metrics as obs_metrics

#: Schema identifier stamped on the serve_start event.
EVENT_SCHEMA = "repro-serve-events/v1"


def publish_event(record: dict) -> None:
    """Mirror one serve event into the active metrics registry.

    Called by :meth:`EventLog.emit` for every event, so the registry
    counts exactly what the event log records — one source of truth
    whether a run is inspected live (``--metrics``) or replayed from
    its JSONL log (``repro replay --metrics``).  A no-op while metrics
    are disabled (the default).
    """
    reg = obs_metrics.active()
    if reg is None:
        return
    kind = record.get("event")
    if kind == "slot_decided":
        reg.counter(
            "serve_slots_total",
            help="slots decided, by serve path",
            path=record.get("path", "?"),
        ).inc()
        reg.histogram(
            "serve_decide_seconds",
            help="decision wall time per slot (primary attempt + fallback)",
        ).observe(float(record.get("wall_time", 0.0)))
        if record.get("deadline_missed"):
            reg.counter(
                "serve_deadline_misses_total",
                help="slots whose primary solve exceeded the deadline budget",
            ).inc()
        if not record.get("served", True):
            reg.counter(
                "serve_unserved_total",
                help="slots not fully covered even by the greedy fallback",
            ).inc()
    elif kind == "fallback":
        reg.counter(
            "serve_fallbacks_total",
            help="fallback-chain engagements, by trigger",
            reason=record.get("reason", "?"),
        ).inc()
    elif kind == "alert":
        reg.counter(
            "serve_alerts_total",
            help="health alert-rule firings, by rule",
            rule=record.get("rule", "?"),
        ).inc()
    elif kind == "checkpoint_written":
        reg.counter(
            "serve_checkpoints_total", help="checkpoints written"
        ).inc()
    elif kind == "source_error":
        reg.counter(
            "serve_source_errors_total", help="malformed source records"
        ).inc()


class EventLog:
    """Append-only event sink, optionally mirrored to a JSONL file."""

    def __init__(self, path: "str | Path | None" = None) -> None:
        self.path = None if path is None else Path(path)
        self.events: "list[dict]" = []
        self._fh = None
        if self.path is not None:
            self._fh = open(self.path, "a", encoding="utf-8")

    def emit(self, event: str, t: "int | None" = None, **payload) -> dict:
        """Record one event; returns the event dict."""
        record: dict = {"event": event}
        if t is not None:
            record["t"] = int(t)
        record.update(payload)
        self.events.append(record)
        publish_event(record)
        if self._fh is not None:
            self._fh.write(json.dumps(record, sort_keys=True) + "\n")
            self._fh.flush()
        return record

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_events(path: "str | Path") -> "list[dict]":
    """Load a JSONL event log written by :class:`EventLog`.

    Blank lines are skipped; a malformed line raises a
    :class:`ValueError` naming its line number.
    """
    events: list[dict] = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            if not line.strip():
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}: malformed event on line {lineno}: {exc}"
                ) from exc
    return events


def summarize_events(events: "list[dict]") -> dict:
    """Fold an event stream into the run-level summary.

    Returns a dict with the slot count, per-path serve counts
    (``primary`` / ``hold`` / ``greedy``), deadline misses, fallback
    engagements, checkpoints written, skipped source records, health
    alert firings and the number of unserved slots (slots whose
    workload could not be fully covered even by the greedy fallback).
    """
    paths: dict[str, int] = {}
    summary = {
        "slots": 0,
        "deadline_misses": 0,
        "fallbacks": 0,
        "checkpoints": 0,
        "source_errors": 0,
        "unserved": 0,
        "alerts": 0,
    }
    for event in events:
        kind = event.get("event")
        if kind == "slot_decided":
            summary["slots"] += 1
            path = event.get("path", "?")
            paths[path] = paths.get(path, 0) + 1
            if event.get("deadline_missed"):
                summary["deadline_misses"] += 1
            if not event.get("served", True):
                summary["unserved"] += 1
        elif kind == "fallback":
            summary["fallbacks"] += 1
        elif kind == "alert":
            summary["alerts"] += 1
        elif kind == "checkpoint_written":
            summary["checkpoints"] += 1
        elif kind == "source_error":
            summary["source_errors"] += 1
    summary["paths"] = paths
    return summary
