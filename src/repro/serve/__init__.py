"""The fault-tolerant streaming allocation runtime.

Layers, bottom to top:

* :mod:`repro.serve.sources` — :class:`SlotSource` implementations
  yielding validated per-slot inputs (in-memory instances, hourly CSV
  traces, replayable JSONL feeds);
* :mod:`repro.serve.faults` — deterministic solver stall/failure
  injection used to exercise the fallback chain;
* :mod:`repro.serve.events` — the structured JSONL event log every
  run emits (consumed by ``repro replay`` and
  :func:`repro.evaluation.reporting.render_serve_events`);
* :mod:`repro.serve.checkpoint` — atomic checkpoint files enabling
  bitwise-identical resume of a killed run;
* :mod:`repro.serve.runtime` — :class:`ServeLoop`, the deadline-aware
  loop with the hold/greedy fallback chain.

See ``docs/SERVING.md`` for the architecture and the ``repro serve`` /
``repro replay`` CLI entry points.
"""

from repro.serve.checkpoint import CHECKPOINT_SCHEMA, load_checkpoint, save_checkpoint
from repro.serve.events import (
    EVENT_SCHEMA,
    EventLog,
    read_events,
    summarize_events,
)
from repro.serve.faults import FaultInjector, SolverFailure, SolverStall
from repro.serve.runtime import (
    ServeConfig,
    ServeLoop,
    ServeReport,
    SlotOutcome,
    covers,
    greedy_cover,
)
from repro.serve.sources import (
    FEED_SCHEMA,
    InstanceSource,
    JSONLSource,
    SlotSource,
    TraceCSVSource,
    as_source,
    write_feed,
)

__all__ = [
    "ServeLoop",
    "ServeConfig",
    "ServeReport",
    "SlotOutcome",
    "greedy_cover",
    "covers",
    "SlotSource",
    "InstanceSource",
    "TraceCSVSource",
    "JSONLSource",
    "as_source",
    "write_feed",
    "FEED_SCHEMA",
    "FaultInjector",
    "SolverStall",
    "SolverFailure",
    "EventLog",
    "read_events",
    "summarize_events",
    "EVENT_SCHEMA",
    "save_checkpoint",
    "load_checkpoint",
    "CHECKPOINT_SCHEMA",
]
