"""Slot sources: where a serve loop's per-slot inputs come from.

A :class:`SlotSource` is anything that owns a network and can yield
validated :class:`~repro.engine.session.SlotData`, starting from an
arbitrary slot index (resume support).  Three concrete sources cover
the deployment shapes the runtime needs today:

* :class:`InstanceSource` — slots of an in-memory
  :class:`~repro.model.instance.Instance` (tests, experiments);
* :class:`TraceCSVSource` — an hourly-CSV demand trace
  (:func:`repro.workloads.traces.load_hourly_csv`) lifted onto the
  paper topology, so ``repro serve --trace demand.csv`` works from a
  bare file;
* :class:`JSONLSource` — a replayable JSONL feed, one record per slot,
  as captured from a live system (:func:`write_feed` records one).

Every source validates each slot (field values in the ``SlotData``
constructor, shapes against the source's network via
``SlotData.validate``) before handing it to the solver.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterator, Protocol, runtime_checkable

import numpy as np

from repro.engine.session import SlotData
from repro.model.instance import Instance
from repro.model.network import CloudNetwork

#: Schema identifier stamped on JSONL feed headers.
FEED_SCHEMA = "repro-serve-feed/v1"


@runtime_checkable
class SlotSource(Protocol):
    """The protocol the serve runtime drives.

    ``network`` is the topology every slot must match; ``horizon`` is
    the number of slots, or ``None`` for unbounded/live sources;
    ``slots(start)`` yields validated :class:`SlotData` from slot
    ``start`` onward (sources must support restarting from any index
    so a resumed run can skip what the checkpoint already covers).
    """

    network: CloudNetwork
    horizon: "int | None"

    def slots(self, start: int = 0) -> Iterator[SlotData]: ...


class InstanceSource:
    """Serve the slots of an in-memory :class:`Instance`."""

    def __init__(self, instance: Instance) -> None:
        self.instance = instance
        self.network = instance.network
        self.horizon: "int | None" = instance.horizon

    def slots(self, start: int = 0) -> Iterator[SlotData]:
        for t in range(start, self.instance.horizon):
            yield SlotData.from_instance(self.instance, t).validate(self.network)

    def __repr__(self) -> str:
        return f"InstanceSource({self.instance!r})"


class TraceCSVSource(InstanceSource):
    """Serve an hourly-CSV demand trace on the paper topology.

    The CSV is loaded with
    :func:`repro.workloads.traces.load_hourly_csv`, optionally
    truncated to ``horizon`` slots, and lifted onto the paper's
    geographic topology via
    :func:`repro.topology.build_paper_instance` (replication across
    tier-1 clouds, k-nearest SLA edges, peak-provisioned capacities,
    electricity/bandwidth prices).
    """

    def __init__(
        self,
        path: "str | Path",
        *,
        column: int = -1,
        horizon: "int | None" = None,
        k: int = 2,
        n_tier2: "int | None" = None,
        n_tier1: "int | None" = None,
        seed: "int | None" = 42,
    ) -> None:
        from repro.topology import build_paper_instance
        from repro.workloads.traces import load_hourly_csv

        trace = load_hourly_csv(path, column=column)
        if horizon is not None:
            trace = trace[:horizon]
        # A peak-provisioned topology needs strictly positive demand
        # peaks; an all-zero trace cannot define capacities.
        if float(trace.max(initial=0.0)) <= 0:
            raise ValueError(f"trace {path} has no positive demand")
        instance = build_paper_instance(
            trace, k=k, n_tier2=n_tier2, n_tier1=n_tier1, seed=seed
        )
        super().__init__(instance)
        self.path = Path(path)

    def __repr__(self) -> str:
        return f"TraceCSVSource({str(self.path)!r}, T={self.horizon})"


class JSONLSource:
    """Serve a recorded JSONL feed (one slot per line).

    Each record is ``{"t": <slot index>, "workload": [...],
    "tier2_price": [...], "link_price": [...]}``; an optional header
    line ``{"schema": "repro-serve-feed/v1", ...}`` is skipped.
    Records must be contiguous from 0 — the feed is a replayable
    capture, not a sparse sample — and every record is validated
    against ``network`` with a line-numbered error on mismatch.
    """

    def __init__(self, path: "str | Path", network: CloudNetwork) -> None:
        self.path = Path(path)
        self.network = network
        self._records = self._load()
        self.horizon: "int | None" = len(self._records)

    def _load(self) -> "list[SlotData]":
        records: list[SlotData] = []
        with open(self.path, encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, start=1):
                if not line.strip():
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise ValueError(
                        f"{self.path}: malformed feed record on line {lineno}: {exc}"
                    ) from exc
                if "schema" in payload and "workload" not in payload:
                    continue  # feed header
                try:
                    t = int(payload["t"])
                    slot = SlotData(
                        np.asarray(payload["workload"], dtype=float),
                        np.asarray(payload["tier2_price"], dtype=float),
                        np.asarray(payload["link_price"], dtype=float),
                    ).validate(self.network)
                except (KeyError, TypeError, ValueError) as exc:
                    raise ValueError(
                        f"{self.path}: invalid feed record on line {lineno}: {exc}"
                    ) from exc
                if t != len(records):
                    raise ValueError(
                        f"{self.path}: feed record on line {lineno} has t={t}, "
                        f"expected {len(records)} (feeds are contiguous from 0)"
                    )
                records.append(slot)
        return records

    def slots(self, start: int = 0) -> Iterator[SlotData]:
        yield from self._records[start:]

    def __repr__(self) -> str:
        return f"JSONLSource({str(self.path)!r}, T={self.horizon})"


def write_feed(path: "str | Path", source: SlotSource) -> int:
    """Record a source as a replayable JSONL feed; returns slots written.

    The feed round-trips exactly: floats are serialized with
    ``repr``-faithful JSON, so ``JSONLSource`` yields bitwise-identical
    arrays and a replayed run reproduces the original trajectory.
    """
    net = source.network
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        header = {
            "schema": FEED_SCHEMA,
            "n_tier1": net.n_tier1,
            "n_tier2": net.n_tier2,
            "n_edges": net.n_edges,
        }
        fh.write(json.dumps(header, sort_keys=True) + "\n")
        for t, slot in enumerate(source.slots(0)):
            record = {
                "t": t,
                "workload": slot.workload.tolist(),
                "tier2_price": slot.tier2_price.tolist(),
                "link_price": slot.link_price.tolist(),
            }
            fh.write(json.dumps(record) + "\n")
            count += 1
    return count


def as_source(source: Any) -> SlotSource:
    """Coerce an instance-or-source argument into a :class:`SlotSource`."""
    if isinstance(source, Instance):
        return InstanceSource(source)
    if hasattr(source, "slots") and hasattr(source, "network"):
        return source
    raise TypeError(
        f"expected an Instance or SlotSource, got {type(source).__name__}"
    )
