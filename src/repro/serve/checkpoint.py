"""Checkpoint files: crash-safe snapshots of a serve run.

A checkpoint captures everything needed to resume a killed run and
produce a trajectory bitwise-identical to the uninterrupted one: the
step index, every decision applied so far (and which path served it),
the per-step solver statistics, and the controller's carried state as
exported through the engine's
:meth:`~repro.engine.session.SolveSession.export_state` hook.

Format: a single ``.npz`` file holding the decision/state arrays plus
a JSON ``meta`` record (schema tag, step index, controller name,
per-slot serve paths, step statistics, non-array state entries).
Writes are atomic — the file is staged next to the target and moved
into place with :func:`os.replace` — so a crash mid-write never leaves
a truncated checkpoint behind.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from repro.engine.stats import StepStats
from repro.model.allocation import Allocation

#: Schema identifier stamped into every checkpoint's meta record.
CHECKPOINT_SCHEMA = "repro-serve-ckpt/v1"

#: npz key prefix for controller state arrays.
_CTRL_PREFIX = "ctrl__"


def save_checkpoint(
    path: "str | Path",
    snapshot: dict,
    *,
    controller_name: str = "",
    paths: "list[str] | None" = None,
    extra: "dict | None" = None,
) -> Path:
    """Write a session snapshot (see ``SolveSession.export_state``).

    ``paths`` records which serve path ("primary"/"hold"/"greedy")
    produced each decision, so a resumed run's report is complete.
    ``extra`` is an optional JSON-serializable side record (the
    sharded runtime stores the shard index and its tier-1 assignment
    here, so a resume can detect a changed partition layout).
    """
    path = Path(path)
    steps = snapshot.get("steps", [])
    arrays: dict[str, np.ndarray] = {}
    if steps:
        if not all(isinstance(s, Allocation) for s in steps):
            raise TypeError(
                "checkpointing requires Allocation steps (two-tier "
                f"controllers); got {type(steps[0]).__name__}"
            )
        arrays["steps_x"] = np.stack([a.x for a in steps])
        arrays["steps_y"] = np.stack([a.y for a in steps])
        arrays["steps_s"] = np.stack([a.s for a in steps])

    ctrl = snapshot.get("controller", {})
    ctrl_other: dict = {}
    none_keys: list[str] = []
    for key, value in ctrl.items():
        if value is None:
            none_keys.append(key)
        elif isinstance(value, np.ndarray):
            arrays[_CTRL_PREFIX + key] = value
        elif isinstance(value, (bool, int, float, str)):
            ctrl_other[key] = value
        else:
            raise TypeError(
                f"controller snapshot entry {key!r} has unsupported type "
                f"{type(value).__name__} (expected ndarray/scalar/None)"
            )

    meta = {
        "schema": CHECKPOINT_SCHEMA,
        "t": int(snapshot["t"]),
        "controller": controller_name,
        "n_steps": len(steps),
        "paths": list(paths or []),
        "step_stats": [s.to_dict() for s in snapshot.get("step_stats", [])],
        "ctrl_scalars": ctrl_other,
        "ctrl_none": none_keys,
        "extra": dict(extra or {}),
    }

    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        np.savez(fh, meta=np.array(json.dumps(meta, sort_keys=True)), **arrays)
    os.replace(tmp, path)
    return path


def load_checkpoint(path: "str | Path") -> dict:
    """Load a checkpoint into an ``export_state``-shaped snapshot.

    Returns ``{"t", "steps", "step_stats", "controller", "paths",
    "controller_name", "extra"}`` ready for
    :meth:`~repro.engine.session.SolveSession.resume` (``extra`` is
    the side record ``save_checkpoint`` was given, ``{}`` for
    checkpoints written before it existed).
    """
    path = Path(path)
    with np.load(path, allow_pickle=False) as data:
        meta = json.loads(str(data["meta"]))
        if meta.get("schema") != CHECKPOINT_SCHEMA:
            raise ValueError(
                f"{path}: unsupported checkpoint schema {meta.get('schema')!r} "
                f"(expected {CHECKPOINT_SCHEMA!r})"
            )
        steps: list[Allocation] = []
        if meta["n_steps"]:
            xs, ys, ss = data["steps_x"], data["steps_y"], data["steps_s"]
            steps = [
                Allocation(xs[k].copy(), ys[k].copy(), ss[k].copy())
                for k in range(meta["n_steps"])
            ]
        controller: dict = dict(meta["ctrl_scalars"])
        controller.update({key: None for key in meta["ctrl_none"]})
        for key in data.files:
            if key.startswith(_CTRL_PREFIX):
                controller[key[len(_CTRL_PREFIX):]] = data[key].copy()
    return {
        "t": meta["t"],
        "steps": steps,
        "step_stats": [StepStats.from_dict(s) for s in meta["step_stats"]],
        "controller": controller,
        "paths": list(meta["paths"]),
        "controller_name": meta["controller"],
        "extra": dict(meta.get("extra", {})),
    }
