"""Deterministic fault injection for the serve runtime.

The serve loop's fallback chain is only trustworthy if it is
exercised, so the runtime accepts a :class:`FaultInjector` that makes
the primary solver stall or fail on randomly chosen slots.  The draw
for slot ``t`` is a pure function of ``(seed, t)`` — no carried RNG
state — so a checkpoint/resume run injects exactly the same faults as
an uninterrupted one and the resumed trajectory stays bitwise
identical.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


class SolverStall(RuntimeError):
    """The primary solve exceeded its deadline budget (real or injected)."""


class SolverFailure(RuntimeError):
    """The primary solve raised (real exception or injected failure)."""


@dataclass(frozen=True)
class FaultInjector:
    """Injects solver stalls/failures on deterministically chosen slots.

    Parameters
    ----------
    stall_prob:
        Per-slot probability the primary solve stalls past its
        deadline (raises :class:`SolverStall`).
    fail_prob:
        Per-slot probability the primary solve raises
        (:class:`SolverFailure`).
    seed:
        Root seed; the slot-``t`` draw uses ``default_rng((seed, t))``
        so injection is stateless and resume-safe.
    """

    stall_prob: float = 0.0
    fail_prob: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not (0.0 <= self.stall_prob <= 1.0):
            raise ValueError(f"stall_prob must be in [0, 1], got {self.stall_prob}")
        if not (0.0 <= self.fail_prob <= 1.0):
            raise ValueError(f"fail_prob must be in [0, 1], got {self.fail_prob}")
        if self.stall_prob + self.fail_prob > 1.0:
            raise ValueError("stall_prob + fail_prob must not exceed 1")

    def draw(self, t: int) -> "str | None":
        """The fault injected at slot ``t``: ``"stall"``, ``"failure"`` or None."""
        if self.stall_prob == 0.0 and self.fail_prob == 0.0:
            return None
        u = float(np.random.default_rng((self.seed, t)).random())
        if u < self.stall_prob:
            return "stall"
        if u < self.stall_prob + self.fail_prob:
            return "failure"
        return None

    def maybe_raise(self, t: int) -> None:
        """Raise the slot-``t`` fault, if any."""
        fault = self.draw(t)
        if fault == "stall":
            raise SolverStall(f"injected solver stall at slot {t}")
        if fault == "failure":
            raise SolverFailure(f"injected solver failure at slot {t}")
