"""The fault-tolerant streaming serve loop.

:class:`ServeLoop` is the long-lived process shape around the engine:
it pulls validated slots from a :class:`~repro.serve.sources.SlotSource`,
drives a :class:`~repro.engine.session.Controller` through
:class:`~repro.engine.session.SolveSession`, and guarantees every slot
is served on time even when the primary solver stalls or raises.

Per-slot decision path
----------------------
1. **primary** — the controller's own solve, optionally bounded by a
   per-slot deadline budget.  With ``enforce="thread"`` (the default
   when a deadline is set) the solve runs on a worker thread and is
   abandoned at the deadline; with ``enforce="cooperative"`` the solve
   always completes and overruns are recorded as ``deadline_miss``
   events without discarding the (feasible) result.
2. **hold** — on a timeout/failure, re-apply the previously applied
   allocation if it still covers this slot's workload (it satisfies
   all capacity constraints by construction, so coverage is the only
   check).
3. **greedy** — otherwise, a solver-free greedy cover
   (:func:`greedy_cover`) waterfills each tier-1 cloud's demand across
   its SLA edges within the remaining tier-2/link capacities.

Whichever path decides, the decision is recorded in the session (so
the trajectory is complete and the next primary solve anchors at what
actually ran), an event is emitted, and — at the configured cadence —
a crash-safe checkpoint is written.  A killed run resumed from its
checkpoint (:meth:`ServeLoop.resume`) produces a trajectory bitwise
identical to the uninterrupted run's (test-asserted).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.cache import runtime as cache_runtime
from repro.engine.session import SlotData, SolveSession
from repro.model.allocation import Allocation
from repro.model.network import CloudNetwork
from repro.obs import metrics as obs_metrics
from repro.obs import telemetry as obs_telemetry
from repro.obs import tracing as obs_tracing
from repro.serve.checkpoint import load_checkpoint, save_checkpoint
from repro.serve.events import EVENT_SCHEMA, EventLog, summarize_events
from repro.serve.faults import FaultInjector, SolverFailure, SolverStall
from repro.serve.sources import SlotSource, as_source


def greedy_cover(
    network: CloudNetwork,
    workload: np.ndarray,
    tol: float = 1e-9,
) -> "tuple[Allocation, bool]":
    """Solver-free feasible cover of one slot's workload.

    For each tier-1 cloud the demand is first split evenly across its
    SLA edges (clipped to edge and remaining tier-2 capacity), then any
    shortfall is waterfilled into the edges with the most remaining
    headroom.  Returns the allocation (``x = y = s``) and whether every
    cloud's demand was fully covered.  Deterministic: a pure function
    of ``(network, workload)``, so resumed runs reproduce it exactly.
    """
    workload = np.asarray(workload, dtype=float)
    assign = np.zeros(network.n_edges)
    cloud_used = np.zeros(network.n_tier2)
    served = True
    for j in range(network.n_tier1):
        need = float(workload[j])
        if need <= tol:
            continue
        edges = network.edges_of_tier1(j)
        share = need / len(edges)
        for e in edges:
            i = network.edge_i[e]
            amount = min(
                share,
                float(network.edge_capacity[e]),
                float(network.tier2_capacity[i] - cloud_used[i]),
            )
            if amount <= 0:
                continue
            assign[e] += amount
            cloud_used[i] += amount
            need -= amount
        if need > tol:
            def headroom(e: int) -> float:
                i = network.edge_i[e]
                return min(
                    float(network.edge_capacity[e] - assign[e]),
                    float(network.tier2_capacity[i] - cloud_used[i]),
                )

            for e in sorted(edges, key=lambda e: (-headroom(e), e)):
                amount = min(need, max(headroom(e), 0.0))
                if amount <= 0:
                    continue
                assign[e] += amount
                cloud_used[int(network.edge_i[e])] += amount
                need -= amount
                if need <= tol:
                    break
        if need > tol:
            served = False
    return Allocation(assign.copy(), assign.copy(), assign.copy()), served


def covers(
    network: CloudNetwork,
    allocation: Allocation,
    workload: np.ndarray,
    tol: float = 1e-7,
) -> bool:
    """Does ``allocation`` still cover ``workload``?

    Capacity constraints are time-invariant, so a previously feasible
    allocation stays feasible; only the coverage constraint
    ``sum_{i in I_j} s_ij >= lambda_j`` can break when demand rises.
    """
    coverage = network.aggregate_tier1(allocation.s)
    return bool(np.all(coverage >= np.asarray(workload, dtype=float) - tol))


@dataclass(frozen=True)
class ServeConfig:
    """Runtime policy of a :class:`ServeLoop`.

    Parameters
    ----------
    deadline_s:
        Per-slot wall-clock budget for the primary solve; ``None``
        disables deadline handling entirely.
    enforce:
        ``"thread"`` abandons an over-budget solve and falls back
        (preemptive); ``"cooperative"`` lets it finish and only
        records the miss (deterministic — used by the bitwise
        resume tests).
    checkpoint_path, checkpoint_every:
        Write a crash-safe checkpoint every ``checkpoint_every`` slots
        (0 disables).  A final checkpoint is always written at the end
        of :meth:`ServeLoop.run` when a path is configured.
    injector:
        Optional deterministic fault injector exercising the fallback
        chain (tests, smoke jobs).
    max_slots:
        Serve at most this many slots in one :meth:`ServeLoop.run`
        call (``None`` = until the source is exhausted).
    hold_tol:
        Coverage tolerance of the hold fallback.
    checkpoint_extra:
        Optional JSON-serializable side record written into every
        checkpoint's meta (the sharded runtime records the shard
        index and tier-1 assignment here).
    """

    deadline_s: "float | None" = None
    enforce: str = "thread"
    checkpoint_path: "str | Path | None" = None
    checkpoint_every: int = 0
    injector: "FaultInjector | None" = None
    max_slots: "int | None" = None
    hold_tol: float = 1e-7
    checkpoint_extra: "dict | None" = None

    def __post_init__(self) -> None:
        if self.deadline_s is not None and not (self.deadline_s > 0):
            raise ValueError(
                f"deadline_s must be > 0, got {self.deadline_s!r}: a "
                "non-positive per-slot budget would fail every primary "
                "solve before it starts.  Pass a positive --deadline-ms "
                "(or omit it to disable deadline enforcement)."
            )
        if self.enforce not in ("thread", "cooperative"):
            raise ValueError(
                f"enforce must be 'thread' or 'cooperative', got {self.enforce!r}"
            )
        if self.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        if self.checkpoint_every and self.checkpoint_path is None:
            raise ValueError("checkpoint_every set but no checkpoint_path")


@dataclass
class SlotOutcome:
    """How one slot was served.

    ``phases`` breaks the slot's wall time down by serve phase
    (``source_read`` / ``solve`` / ``fallback`` / ``events`` /
    ``checkpoint`` / ``overhead``); the phase marks are taken
    back-to-back and the residual loop bookkeeping is recorded as
    ``overhead``, so the phases partition ``slot_wall`` exactly — the
    deadline budget is fully attributed, nothing hides in untimed
    glue.  ``wall_time`` keeps its original meaning: the decision time
    alone (primary attempt plus any fallback), excluding source read
    and checkpoint.
    """

    t: int
    path: str  # "primary" | "hold" | "greedy"
    wall_time: float
    deadline_missed: bool = False
    served: bool = True
    error: "str | None" = None
    decision: "Allocation | None" = None
    phases: "dict[str, float]" = field(default_factory=dict)
    slot_wall: float = 0.0


@dataclass
class ServeReport:
    """Result of a :meth:`ServeLoop.run` call."""

    outcomes: "list[SlotOutcome]"
    trajectory: "object | None"
    summary: dict
    error: "str | None" = None
    paths: "list[str]" = field(default_factory=list)

    def describe(self) -> str:
        s = self.summary
        served = s["slots"] - s["unserved"]
        parts = [
            f"{s['slots']} slots ({served} served, {s['unserved']} unserved)",
            "paths: "
            + ", ".join(f"{k}={v}" for k, v in sorted(s["paths"].items())),
            f"{s['deadline_misses']} deadline misses",
            f"{s['fallbacks']} fallbacks",
            f"{s['checkpoints']} checkpoints",
        ]
        if s.get("alerts"):
            parts.append(f"{s['alerts']} alerts")
        if self.error:
            parts.append(f"stopped on source error: {self.error}")
        return "; ".join(parts)


class ServeLoop:
    """Drive a controller through a slot source, fault-tolerantly.

    Parameters
    ----------
    controller:
        Any :class:`~repro.engine.session.Controller`.  Checkpointing
        additionally requires the ``export_state``/``restore_state``
        hooks (``RegularizedOnline`` implements them).
    source:
        A :class:`~repro.serve.sources.SlotSource` or a bare
        :class:`~repro.model.instance.Instance`.
    config:
        Runtime policy (:class:`ServeConfig`).
    event_log:
        Event sink; defaults to an in-memory :class:`EventLog`.
    initial:
        Decision at slot ``-1`` (controller default when ``None``).
    health:
        Optional :class:`~repro.obs.health.HealthMonitor`; fed every
        decided slot (primary or fallback) so its gauges track the
        trajectory that actually ran, and its alert rules emit
        ``alert`` events into this loop's event log.
    on_slot:
        Optional ``(loop, outcome) -> None`` hook called after each
        slot is fully published — the ``--watch`` console view hangs
        off this.
    """

    def __init__(
        self,
        controller,
        source,
        config: "ServeConfig | None" = None,
        event_log: "EventLog | None" = None,
        initial: "Allocation | None" = None,
        *,
        health=None,
        on_slot=None,
        _session: "SolveSession | None" = None,
        _paths: "list[str] | None" = None,
    ) -> None:
        self.controller = controller
        self.source: SlotSource = as_source(source)
        self.config = config or ServeConfig()
        self.log = event_log if event_log is not None else EventLog()
        self.health = health
        self.on_slot = on_slot
        if _session is not None:
            self.session = _session
        else:
            self.session = SolveSession(
                controller, self._session_source(), initial=initial
            )
        self.paths: "list[str]" = list(_paths or [])
        steps = self.session._steps
        self._last: "Allocation | None" = steps[-1] if steps else initial
        self._outcomes: "list[SlotOutcome]" = []

    def _session_source(self):
        """Predictive controllers need the instance; others the network."""
        return getattr(self.source, "instance", self.source.network)

    # ------------------------------------------------------------------
    @classmethod
    def resume(
        cls,
        controller,
        source,
        checkpoint_path: "str | Path",
        config: "ServeConfig | None" = None,
        event_log: "EventLog | None" = None,
        health=None,
        on_slot=None,
    ) -> "ServeLoop":
        """Rebuild a loop from a checkpoint written by a previous run."""
        snapshot = load_checkpoint(checkpoint_path)
        name = snapshot.get("controller_name", "")
        if name and name != controller.name:
            raise ValueError(
                f"checkpoint {checkpoint_path} was written by controller "
                f"{name!r}, cannot resume with {controller.name!r}"
            )
        src = as_source(source)
        session = SolveSession.resume(
            controller,
            getattr(src, "instance", src.network),
            snapshot,
        )
        return cls(
            controller,
            src,
            config=config,
            event_log=event_log,
            health=health,
            on_slot=on_slot,
            _session=session,
            _paths=snapshot["paths"],
        )

    # ------------------------------------------------------------------
    def run(self) -> ServeReport:
        """Serve slots until the source is exhausted (or ``max_slots``)."""
        cfg = self.config
        start_t = self.session.t
        # The solver backend actually in effect: a resumed session's
        # subproblem may carry the checkpoint-recorded backend rather
        # than the relaunched controller's configured one.
        state_sub = getattr(self.session.state, "subproblem", None)
        backend = getattr(
            getattr(state_sub, "config", None),
            "backend",
            getattr(getattr(self.controller, "config", None), "backend", None),
        )
        self.log.emit(
            "serve_resume" if start_t else "serve_start",
            t=start_t,
            schema=EVENT_SCHEMA,
            controller=self.controller.name,
            backend=backend,
            source=repr(self.source),
            deadline_s=cfg.deadline_s,
            enforce=cfg.enforce if cfg.deadline_s is not None else None,
            cache=cache_runtime.active_dir(),
        )
        error: "str | None" = None
        count = 0
        slots = self.source.slots(start_t)
        while cfg.max_slots is None or count < cfg.max_slots:
            slot_start = time.perf_counter()
            try:
                with obs_tracing.span("serve.source_read", t=self.session.t):
                    slot = next(slots)
            except StopIteration:
                break
            except ValueError as exc:
                # A malformed source record: log it, checkpoint what we
                # have, and shut down cleanly instead of dying with a
                # traceback mid-trace.
                error = str(exc)
                self.log.emit("source_error", t=self.session.t, message=error)
                break
            source_elapsed = time.perf_counter() - slot_start
            outcome = self._serve_slot(self.session.t, slot)
            outcome.phases["source_read"] = source_elapsed
            count += 1
            if (
                cfg.checkpoint_every
                and self.session.t % cfg.checkpoint_every == 0
            ):
                ck_start = time.perf_counter()
                self._write_checkpoint()
                outcome.phases["checkpoint"] = time.perf_counter() - ck_start
            outcome.slot_wall = time.perf_counter() - slot_start
            # Whatever the contiguous phase marks did not capture is
            # loop bookkeeping (span records, outcome wiring); surface
            # it as its own phase so the slot budget is attributed
            # exactly rather than ">= 95% with hidden glue".
            outcome.phases["overhead"] = max(
                outcome.slot_wall - sum(outcome.phases.values()), 0.0
            )
            self._publish_slot(outcome)
            if self.health is not None:
                self.health.observe_slot(
                    outcome.t, slot, outcome.decision,
                    outcome=outcome, log=self.log,
                )
            # Stream the registry (including this slot's health gauges)
            # to any attached telemetry sink at its own cadence.
            obs_telemetry.autoflush()
            if self.on_slot is not None:
                self.on_slot(self, outcome)
        if cfg.checkpoint_path is not None and self.session.t > start_t:
            with obs_tracing.span("serve.final_checkpoint", t=self.session.t):
                self._write_checkpoint()
        return self._finish(error)

    # ------------------------------------------------------------------
    def _serve_slot(self, t: int, slot: SlotData) -> SlotOutcome:
        cfg = self.config
        phases: "dict[str, float]" = {}
        span = obs_tracing.span("serve.slot", t=t)
        with span:
            start = time.perf_counter()
            decision = None
            reason: "str | None" = None
            timed_out = False
            # Injected faults fire *before* the primary solve touches the
            # carried state, so injection never corrupts the session.
            injected = cfg.injector.draw(t) if cfg.injector is not None else None
            if injected is not None:
                reason = injected  # "stall" or "failure"
            else:
                try:
                    with obs_tracing.span("serve.solve", t=t):
                        if cfg.deadline_s is not None and cfg.enforce == "thread":
                            decision = self._step_with_timeout(slot, cfg.deadline_s)
                        else:
                            decision = self.session.step(slot)
                except SolverStall:
                    reason, timed_out = "stall", True
                except Exception as exc:  # noqa: BLE001 — keep serving through faults
                    reason = (
                        "failure"
                        if isinstance(exc, SolverFailure)
                        else type(exc).__name__
                    )
            elapsed = time.perf_counter() - start
            phases["solve"] = elapsed
            mark = time.perf_counter()

            if decision is not None:
                missed = cfg.deadline_s is not None and elapsed > cfg.deadline_s
                if missed:
                    self.log.emit(
                        "deadline_miss", t=t, wall_time=elapsed, enforce=cfg.enforce
                    )
                outcome = SlotOutcome(
                    t, "primary", elapsed, deadline_missed=missed, decision=decision
                )
            else:
                with obs_tracing.span("serve.fallback", t=t, reason=reason):
                    if timed_out:
                        # The abandoned worker may still be mutating the old
                        # carried state; fork a clean session around it.
                        self._fork_session(t)
                    if reason == "stall":
                        self.log.emit(
                            "deadline_miss", t=t, wall_time=elapsed,
                            enforce=cfg.enforce,
                        )
                    self.log.emit("fallback", t=t, reason=reason)
                    outcome = self._fallback(t, slot, reason)
                    outcome.wall_time = time.perf_counter() - start
                    self.session.apply(slot, outcome.decision)
            # The branch above is fallback handling when a fallback ran,
            # event/bookkeeping overhead otherwise.
            branch = time.perf_counter() - mark
            mark += branch
            events_extra = 0.0
            if outcome.path == "primary":
                phases["fallback"] = 0.0
                events_extra = branch
            else:
                phases["fallback"] = branch

            self._last = self.session._steps[-1]
            self.paths.append(outcome.path)
            self._outcomes.append(outcome)
            with obs_tracing.span("serve.events", t=t):
                self.log.emit(
                    "slot_decided",
                    t=t,
                    path=outcome.path,
                    wall_time=outcome.wall_time,
                    deadline_missed=outcome.deadline_missed,
                    served=outcome.served,
                    error=outcome.error,
                )
            phases["events"] = time.perf_counter() - mark + events_extra
            outcome.phases = phases
            span.set(path=outcome.path, wall_time=outcome.wall_time)
        return outcome

    def _publish_slot(self, outcome: SlotOutcome) -> None:
        """Record the slot's latency and phase breakdown in the registry."""
        reg = obs_metrics.active()
        if reg is None:
            return
        reg.histogram(
            "serve_slot_seconds",
            help="total wall time per slot (source read through checkpoint)",
        ).observe(outcome.slot_wall)
        for phase, seconds in outcome.phases.items():
            reg.histogram(
                "serve_phase_seconds",
                help="slot wall time attributed to each serve phase",
                phase=phase,
            ).observe(seconds)

    def _fallback(self, t: int, slot: SlotData, reason: "str | None") -> SlotOutcome:
        net = self.source.network
        missed = reason == "stall"
        held = self._last
        if held is not None and covers(net, held, slot.workload, self.config.hold_tol):
            return SlotOutcome(
                t, "hold", 0.0,
                deadline_missed=missed, error=reason, decision=held.copy(),
            )
        decision, served = greedy_cover(net, slot.workload)
        return SlotOutcome(
            t, "greedy", 0.0,
            deadline_missed=missed, served=served, error=reason, decision=decision,
        )

    def _step_with_timeout(self, slot: SlotData, deadline: float):
        box: dict = {}

        def work() -> None:
            try:
                box["decision"] = self.session.step(slot)
            except BaseException as exc:  # noqa: BLE001 — rethrown below
                box["error"] = exc

        worker = threading.Thread(target=work, daemon=True)
        worker.start()
        worker.join(deadline)
        if worker.is_alive():
            raise SolverStall(f"solve exceeded deadline budget {deadline}s")
        if "error" in box:
            raise box["error"]
        return box["decision"]

    def _fork_session(self, t: int) -> None:
        """Replace a session whose step was abandoned mid-solve.

        The zombie worker holds references to the *old* session and
        state; the fork copies the bookkeeping up to slot ``t`` into a
        fresh session with freshly-built carried state anchored at the
        last applied decision, so nothing the zombie later does is
        observable.
        """
        old = self.session
        fresh = SolveSession(
            self.controller, self._session_source(), initial=self._last
        )
        fresh.t = t
        fresh._steps = list(old._steps[:t])
        fresh._step_stats = list(old._step_stats[:t])
        self.session = fresh

    # ------------------------------------------------------------------
    def _write_checkpoint(self) -> None:
        cfg = self.config
        snapshot = self.session.export_state()
        save_checkpoint(
            cfg.checkpoint_path,
            snapshot,
            controller_name=self.controller.name,
            paths=self.paths,
            extra=cfg.checkpoint_extra,
        )
        self.log.emit(
            "checkpoint_written",
            t=self.session.t,
            path=str(cfg.checkpoint_path),
            n_steps=len(snapshot["steps"]),
        )
        # Checkpoints are the durability boundary: make the trace and
        # telemetry streams on disk at least as current as the
        # checkpoint, so a kill loses no span/snapshot that led to a
        # durable slot.
        tracer = obs_tracing.active()
        if tracer is not None:
            tracer.flush()
        sink = obs_telemetry.active_sink()
        if sink is not None:
            sink.flush(force=True)

    def _finish(self, error: "str | None") -> ServeReport:
        summary = summarize_events(self.log.events)
        self.log.emit("serve_end", t=self.session.t, **summary, error=error)
        trajectory = self.session.trajectory() if self.session.t else None
        return ServeReport(
            outcomes=list(self._outcomes),
            trajectory=trajectory,
            summary=summary,
            error=error,
            paths=list(self.paths),
        )
