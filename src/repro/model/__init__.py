"""Problem model: cloud network topology, problem instances, costs.

This package implements the model of Section II of the paper: a
two-tier cloud network with SLA edges, time-varying workloads and
prices, affine allocation costs and ``[.]^+`` reconfiguration costs.
"""

from repro.model.network import Cloud, CloudNetwork, SLAEdge
from repro.model.instance import Instance
from repro.model.allocation import Allocation, Trajectory
from repro.model.costs import (
    CostBreakdown,
    evaluate_cost,
    pos_part,
    reconfiguration_increments,
)
from repro.model.feasibility import (
    FeasibilityReport,
    check_instance_feasible,
    check_trajectory,
    necessary_conditions,
)
from repro.model.normalize import (
    NormalizedInstance,
    denormalize_trajectory,
    normalize_instance,
)

__all__ = [
    "Cloud",
    "CloudNetwork",
    "SLAEdge",
    "Instance",
    "Allocation",
    "Trajectory",
    "CostBreakdown",
    "evaluate_cost",
    "pos_part",
    "reconfiguration_increments",
    "FeasibilityReport",
    "check_instance_feasible",
    "check_trajectory",
    "necessary_conditions",
    "NormalizedInstance",
    "normalize_instance",
    "denormalize_trajectory",
]
