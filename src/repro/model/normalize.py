"""Instance normalization (the Remarks under Theorem 1).

The Theorem-1 competitive ratio scales with the capacities, but the
paper notes the inputs can always be normalized — divide workloads
and capacities by the largest capacity so everything lies in
``[0, 1]`` — solved in normalized units, and the decisions translated
back by the same scale.  The cost objective is positively homogeneous
in the resource scale, so rescaling decisions preserves optimality.

:func:`normalize_instance` performs the rescaling;
:func:`denormalize_trajectory` maps decisions back.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.allocation import Trajectory
from repro.model.instance import Instance
from repro.model.network import Cloud, CloudNetwork, SLAEdge


@dataclass(frozen=True)
class NormalizedInstance:
    """A rescaled instance plus the scale to undo it."""

    instance: Instance
    scale: float


def normalize_instance(instance: Instance) -> NormalizedInstance:
    """Rescale capacities and workloads by the largest capacity.

    Prices are untouched: cost terms are ``price * resource``, so the
    normalized optimal cost is the original divided by ``scale`` and
    all cost *ratios* (including the empirical competitive ratio) are
    invariant.
    """
    net = instance.network
    scale = float(max(net.tier2_capacity.max(), net.edge_capacity.max()))
    if scale <= 0:
        raise ValueError("network has no positive capacity")

    tier2 = [
        Cloud(c.name, c.capacity / scale, c.recon_price, c.location)
        for c in net.tier2_clouds
    ]
    tier1 = [
        Cloud(
            c.name,
            c.capacity / scale if np.isfinite(c.capacity) else np.inf,
            c.recon_price,
            c.location,
        )
        for c in net.tier1_clouds
    ]
    edges = [
        SLAEdge(e.tier2, e.tier1, e.capacity / scale, e.recon_price)
        for e in net.edges
    ]
    scaled = Instance(
        network=CloudNetwork(tier2, tier1, edges),
        workload=instance.workload / scale,
        tier2_price=instance.tier2_price,
        link_price=instance.link_price,
        tier1_price=instance.tier1_price,
    )
    return NormalizedInstance(instance=scaled, scale=scale)


def denormalize_trajectory(trajectory: Trajectory, scale: float) -> Trajectory:
    """Map normalized decisions back to original resource units."""
    if scale <= 0:
        raise ValueError("scale must be > 0")
    return Trajectory(
        trajectory.x * scale, trajectory.y * scale, trajectory.s * scale
    )
