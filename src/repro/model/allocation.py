"""Allocation decision containers.

An :class:`Allocation` is a single-slot decision ``(x, y, s)`` in edge
space; a :class:`Trajectory` stacks ``T`` of them.  ``x[e]`` is the
tier-2 resource allocated on SLA edge ``e = (i, j)`` (i.e. at cloud
``i`` for workload from cloud ``j``), ``y[e]`` the network resource on
the edge, and ``s[e]`` the covering auxiliary (``s <= min(x, y)``,
``sum_{i in I_j} s >= lambda_j``) from the reformulated problem (2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.network import CloudNetwork
from repro.util.validation import check_nonnegative


@dataclass
class Allocation:
    """Single-slot decision in edge space (arrays of shape ``(E,)``)."""

    x: np.ndarray
    y: np.ndarray
    s: np.ndarray

    def __post_init__(self) -> None:
        self.x = np.asarray(self.x, dtype=float)
        self.y = np.asarray(self.y, dtype=float)
        self.s = np.asarray(self.s, dtype=float)
        if not (self.x.shape == self.y.shape == self.s.shape):
            raise ValueError(
                f"x/y/s shapes differ: {self.x.shape}, {self.y.shape}, {self.s.shape}"
            )
        if self.x.ndim != 1:
            raise ValueError("Allocation arrays must be 1-D (edge space)")

    @classmethod
    def zeros(cls, n_edges: int) -> "Allocation":
        """The all-zero decision (the state before the first slot)."""
        z = np.zeros(n_edges)
        return cls(z.copy(), z.copy(), z.copy())

    def tier2_totals(self, network: CloudNetwork) -> np.ndarray:
        """Per-tier-2-cloud totals ``X_i = sum_{j in J_i} x_ij``."""
        return network.aggregate_tier2(self.x)

    def copy(self) -> "Allocation":
        return Allocation(self.x.copy(), self.y.copy(), self.s.copy())


class Trajectory:
    """A sequence of allocations over ``T`` slots (arrays ``(T, E)``).

    Supports incremental construction by online algorithms via
    :meth:`from_steps`, and vectorized cost evaluation through
    :mod:`repro.model.costs`.
    """

    def __init__(self, x: np.ndarray, y: np.ndarray, s: np.ndarray) -> None:
        self.x = check_nonnegative("trajectory.x", np.atleast_2d(np.asarray(x, float)))
        self.y = check_nonnegative("trajectory.y", np.atleast_2d(np.asarray(y, float)))
        self.s = check_nonnegative("trajectory.s", np.atleast_2d(np.asarray(s, float)))
        if not (self.x.shape == self.y.shape == self.s.shape):
            raise ValueError(
                f"x/y/s shapes differ: {self.x.shape}, {self.y.shape}, {self.s.shape}"
            )

    @classmethod
    def from_steps(cls, steps: "list[Allocation]") -> "Trajectory":
        """Stack single-slot allocations produced by an online loop."""
        if not steps:
            raise ValueError("cannot build a trajectory from zero steps")
        return cls(
            np.stack([a.x for a in steps]),
            np.stack([a.y for a in steps]),
            np.stack([a.s for a in steps]),
        )

    @classmethod
    def zeros(cls, horizon: int, n_edges: int) -> "Trajectory":
        return cls(
            np.zeros((horizon, n_edges)),
            np.zeros((horizon, n_edges)),
            np.zeros((horizon, n_edges)),
        )

    @property
    def horizon(self) -> int:
        return self.x.shape[0]

    @property
    def n_edges(self) -> int:
        return self.x.shape[1]

    def step(self, t: int) -> Allocation:
        """The slot-``t`` decision as an :class:`Allocation` (copies)."""
        return Allocation(self.x[t].copy(), self.y[t].copy(), self.s[t].copy())

    def tier2_totals(self, network: CloudNetwork) -> np.ndarray:
        """Per-cloud totals ``X_{it}`` as a ``(T, I)`` array."""
        return network.aggregate_tier2(self.x)

    def concat(self, other: "Trajectory") -> "Trajectory":
        """Concatenate two trajectories in time (used by FHC-style blocks)."""
        if self.n_edges != other.n_edges:
            raise ValueError("edge counts differ")
        return Trajectory(
            np.vstack([self.x, other.x]),
            np.vstack([self.y, other.y]),
            np.vstack([self.s, other.s]),
        )

    def copy(self) -> "Trajectory":
        return Trajectory(self.x.copy(), self.y.copy(), self.s.copy())

    def __repr__(self) -> str:
        return f"Trajectory(T={self.horizon}, E={self.n_edges})"
