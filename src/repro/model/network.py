"""Two-tier cloud network topology (Section II-A of the paper).

A :class:`CloudNetwork` holds:

* tier-2 clouds ``i in I`` (Internet-core clouds) with capacity ``C_i``
  and reconfiguration price ``b_i``;
* tier-1 clouds ``j in J`` (edge clouds) with optional capacity
  ``C_j`` and reconfiguration price ``f_j`` (the paper's full model;
  the reduced problem P1 drops the tier-1 cost term ``F_1``);
* SLA edges ``(i, j)``: tier-1 cloud ``j`` may route its workload to
  tier-2 cloud ``i`` only if ``(i, j)`` is an edge.  Each edge carries
  a network capacity ``B_ij`` and a network reconfiguration price
  ``d_ij``.

All quantities are stored as dense NumPy arrays indexed by cloud index
or edge index; aggregation between edge space and cloud space uses
cached sparse incidence matrices so that per-slot algorithm steps are
fully vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np
import scipy.sparse as sp

from repro.util.validation import check_nonnegative, check_positive


@dataclass(frozen=True)
class Cloud:
    """A single cloud (either tier).

    Parameters
    ----------
    name:
        Human-readable identifier (unique within its tier).
    capacity:
        Resource capacity (``C_i`` for tier-2, ``C_j`` for tier-1).
        ``inf`` is allowed for effectively uncapacitated clouds.
    recon_price:
        Unit reconfiguration price (``b_i`` / ``f_j``), charged per
        unit of *increase* of the cloud's total allocation.
    location:
        Optional ``(latitude, longitude)`` used by the topology layer
        to build SLA subsets from geographic distance.
    """

    name: str
    capacity: float
    recon_price: float = 0.0
    location: tuple[float, float] | None = None

    def __post_init__(self) -> None:
        if not (self.capacity > 0):
            raise ValueError(f"cloud {self.name!r}: capacity must be > 0")
        if not (self.recon_price >= 0):
            raise ValueError(f"cloud {self.name!r}: recon_price must be >= 0")


@dataclass(frozen=True)
class SLAEdge:
    """An SLA-feasible (tier-2 cloud, tier-1 cloud) pair.

    Parameters
    ----------
    tier2, tier1:
        Integer indices into the network's tier-2 / tier-1 cloud lists.
    capacity:
        Network capacity ``B_ij`` between the two clouds.
    recon_price:
        Network reconfiguration price ``d_ij``.
    """

    tier2: int
    tier1: int
    capacity: float
    recon_price: float = 0.0

    def __post_init__(self) -> None:
        if not (self.capacity > 0):
            raise ValueError(f"edge ({self.tier2},{self.tier1}): capacity must be > 0")
        if not (self.recon_price >= 0):
            raise ValueError(f"edge ({self.tier2},{self.tier1}): recon_price must be >= 0")


class CloudNetwork:
    """Immutable two-tier cloud network with SLA edges.

    The constructor validates that every tier-1 cloud has at least one
    SLA edge (otherwise its workload could never be served) and that
    edges reference valid cloud indices with no duplicates.
    """

    def __init__(
        self,
        tier2: Sequence[Cloud],
        tier1: Sequence[Cloud],
        edges: Iterable[SLAEdge],
    ) -> None:
        self.tier2_clouds = tuple(tier2)
        self.tier1_clouds = tuple(tier1)
        self.edges = tuple(edges)
        if not self.tier2_clouds:
            raise ValueError("network needs at least one tier-2 cloud")
        if not self.tier1_clouds:
            raise ValueError("network needs at least one tier-1 cloud")
        if not self.edges:
            raise ValueError("network needs at least one SLA edge")

        n_i, n_j, n_e = len(self.tier2_clouds), len(self.tier1_clouds), len(self.edges)
        seen: set[tuple[int, int]] = set()
        for e in self.edges:
            if not (0 <= e.tier2 < n_i):
                raise ValueError(f"edge references unknown tier-2 index {e.tier2}")
            if not (0 <= e.tier1 < n_j):
                raise ValueError(f"edge references unknown tier-1 index {e.tier1}")
            if (e.tier2, e.tier1) in seen:
                raise ValueError(f"duplicate SLA edge ({e.tier2},{e.tier1})")
            seen.add((e.tier2, e.tier1))

        # Index arrays: edge -> tier-2 index, edge -> tier-1 index.
        self.edge_i = np.array([e.tier2 for e in self.edges], dtype=np.intp)
        self.edge_j = np.array([e.tier1 for e in self.edges], dtype=np.intp)

        covered = np.zeros(n_j, dtype=bool)
        covered[self.edge_j] = True
        if not covered.all():
            missing = [self.tier1_clouds[j].name for j in np.flatnonzero(~covered)]
            raise ValueError(f"tier-1 clouds without any SLA edge: {missing}")

        # Parameter arrays.
        self.tier2_capacity = check_positive(
            "tier2_capacity", np.array([c.capacity for c in self.tier2_clouds])
        )
        self.tier2_recon_price = check_nonnegative(
            "tier2_recon_price", np.array([c.recon_price for c in self.tier2_clouds])
        )
        self.tier1_capacity = np.array([c.capacity for c in self.tier1_clouds], dtype=float)
        self.tier1_recon_price = check_nonnegative(
            "tier1_recon_price", np.array([c.recon_price for c in self.tier1_clouds])
        )
        self.edge_capacity = check_positive(
            "edge_capacity", np.array([e.capacity for e in self.edges])
        )
        self.edge_recon_price = check_nonnegative(
            "edge_recon_price", np.array([e.recon_price for e in self.edges])
        )

        self._n_i, self._n_j, self._n_e = n_i, n_j, n_e

        # Sparse aggregation matrices (CSR): rows are clouds, columns edges.
        ones = np.ones(n_e)
        self._agg_i = sp.csr_matrix(
            (ones, (self.edge_i, np.arange(n_e))), shape=(n_i, n_e)
        )
        self._agg_j = sp.csr_matrix(
            (ones, (self.edge_j, np.arange(n_e))), shape=(n_j, n_e)
        )

        # Edge lists per cloud, precomputed for algorithms that need them.
        self._edges_of_i: tuple[np.ndarray, ...] = tuple(
            np.flatnonzero(self.edge_i == i) for i in range(n_i)
        )
        self._edges_of_j: tuple[np.ndarray, ...] = tuple(
            np.flatnonzero(self.edge_j == j) for j in range(n_j)
        )

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------
    @property
    def n_tier2(self) -> int:
        """Number of tier-2 clouds |I|."""
        return self._n_i

    @property
    def n_tier1(self) -> int:
        """Number of tier-1 clouds |J|."""
        return self._n_j

    @property
    def n_edges(self) -> int:
        """Number of SLA edges |E|."""
        return self._n_e

    # ------------------------------------------------------------------
    # SLA subsets
    # ------------------------------------------------------------------
    def edges_of_tier2(self, i: int) -> np.ndarray:
        """Edge indices whose tier-2 endpoint is cloud ``i`` (the set J_i)."""
        return self._edges_of_i[i]

    def edges_of_tier1(self, j: int) -> np.ndarray:
        """Edge indices whose tier-1 endpoint is cloud ``j`` (the set I_j)."""
        return self._edges_of_j[j]

    def sla_tier2_of(self, j: int) -> np.ndarray:
        """Tier-2 cloud indices in I_j (SLA-feasible for tier-1 cloud j)."""
        return self.edge_i[self._edges_of_j[j]]

    def sla_tier1_of(self, i: int) -> np.ndarray:
        """Tier-1 cloud indices in J_i (served by tier-2 cloud i)."""
        return self.edge_j[self._edges_of_i[i]]

    # ------------------------------------------------------------------
    # Edge-space <-> cloud-space maps (vectorized hot paths)
    # ------------------------------------------------------------------
    def aggregate_tier2(self, edge_values: np.ndarray) -> np.ndarray:
        """Sum edge-indexed values per tier-2 cloud.

        Accepts shape ``(E,)`` or ``(T, E)``; returns ``(I,)`` or ``(T, I)``.
        """
        edge_values = np.asarray(edge_values, dtype=float)
        if edge_values.ndim == 1:
            return self._agg_i @ edge_values
        return (self._agg_i @ edge_values.T).T

    def aggregate_tier1(self, edge_values: np.ndarray) -> np.ndarray:
        """Sum edge-indexed values per tier-1 cloud (``(E,)`` or ``(T,E)``)."""
        edge_values = np.asarray(edge_values, dtype=float)
        if edge_values.ndim == 1:
            return self._agg_j @ edge_values
        return (self._agg_j @ edge_values.T).T

    def expand_tier2(self, cloud_values: np.ndarray) -> np.ndarray:
        """Broadcast tier-2 cloud values onto edges (``(I,)``/``(T,I)`` input)."""
        cloud_values = np.asarray(cloud_values, dtype=float)
        return cloud_values[..., self.edge_i]

    def expand_tier1(self, cloud_values: np.ndarray) -> np.ndarray:
        """Broadcast tier-1 cloud values onto edges (``(J,)``/``(T,J)`` input)."""
        cloud_values = np.asarray(cloud_values, dtype=float)
        return cloud_values[..., self.edge_j]

    @property
    def tier2_incidence(self) -> sp.csr_matrix:
        """Sparse ``(I, E)`` 0/1 matrix mapping edges to tier-2 clouds."""
        return self._agg_i

    @property
    def tier1_incidence(self) -> sp.csr_matrix:
        """Sparse ``(J, E)`` 0/1 matrix mapping edges to tier-1 clouds."""
        return self._agg_j

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"CloudNetwork(|I|={self.n_tier2}, |J|={self.n_tier1}, "
            f"|E|={self.n_edges})"
        )


def complete_bipartite_network(
    tier2: Sequence[Cloud],
    tier1: Sequence[Cloud],
    edge_capacity: float,
    edge_recon_price: float = 0.0,
) -> CloudNetwork:
    """Build a network in which every tier-1 cloud may use every tier-2 cloud.

    Convenience constructor for examples and tests where the SLA is
    unrestricted (``I_j = I`` for all ``j``).
    """
    edges = [
        SLAEdge(i, j, edge_capacity, edge_recon_price)
        for i in range(len(tier2))
        for j in range(len(tier1))
    ]
    return CloudNetwork(tier2, tier1, edges)
