"""A problem instance: network + time-varying workloads and prices.

The instance fixes everything an algorithm may observe: the topology,
the workload sequence ``lambda_{jt}``, the tier-2 allocation prices
``a_{it}`` and the per-edge network allocation prices ``c_{ijt}``.
Optionally it carries tier-1 allocation prices ``e_{jt}`` for the full
three-cost model (the paper's P1 drops the tier-1 term ``F_1``; every
algorithm in this library supports the reduced model and the tier-1
extension is provided at the model/cost level).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.model.network import CloudNetwork
from repro.util.validation import check_nonnegative


@dataclass
class Instance:
    """Inputs of problem P1 over a horizon of ``T`` time slots.

    Parameters
    ----------
    network:
        The two-tier topology with capacities and reconfiguration prices.
    workload:
        Array ``(T, J)``; ``workload[t, j]`` is ``lambda_{jt}``.
    tier2_price:
        Array ``(T, I)``; ``tier2_price[t, i]`` is the allocation price
        ``a_{it}`` (e.g. electricity).
    link_price:
        Array ``(T, E)`` of per-edge network allocation prices
        ``c_{ijt}`` (e.g. bandwidth), or ``(E,)`` for static prices
        (broadcast over time).
    tier1_price:
        Optional ``(T, J)`` tier-1 allocation prices for the extended
        three-cost model.
    """

    network: CloudNetwork
    workload: np.ndarray
    tier2_price: np.ndarray
    link_price: np.ndarray
    tier1_price: np.ndarray | None = None

    def __post_init__(self) -> None:
        net = self.network
        self.workload = check_nonnegative("workload", np.atleast_2d(self.workload))
        T = self.workload.shape[0]
        if self.workload.shape != (T, net.n_tier1):
            raise ValueError(
                f"workload has shape {self.workload.shape}, expected ({T}, {net.n_tier1})"
            )
        self.tier2_price = check_nonnegative("tier2_price", self.tier2_price)
        if self.tier2_price.ndim == 1:
            self.tier2_price = np.broadcast_to(
                self.tier2_price, (T, net.n_tier2)
            ).copy()
        if self.tier2_price.shape != (T, net.n_tier2):
            raise ValueError(
                f"tier2_price has shape {self.tier2_price.shape}, "
                f"expected ({T}, {net.n_tier2})"
            )
        self.link_price = check_nonnegative("link_price", self.link_price)
        if self.link_price.ndim == 1:
            self.link_price = np.broadcast_to(self.link_price, (T, net.n_edges)).copy()
        if self.link_price.shape != (T, net.n_edges):
            raise ValueError(
                f"link_price has shape {self.link_price.shape}, "
                f"expected ({T}, {net.n_edges})"
            )
        if self.tier1_price is not None:
            self.tier1_price = check_nonnegative("tier1_price", self.tier1_price)
            if self.tier1_price.ndim == 1:
                self.tier1_price = np.broadcast_to(
                    self.tier1_price, (T, net.n_tier1)
                ).copy()
            if self.tier1_price.shape != (T, net.n_tier1):
                raise ValueError(
                    f"tier1_price has shape {self.tier1_price.shape}, "
                    f"expected ({T}, {net.n_tier1})"
                )

    # ------------------------------------------------------------------
    @property
    def horizon(self) -> int:
        """Number of time slots ``T``."""
        return self.workload.shape[0]

    def slice(self, start: int, stop: int) -> "Instance":
        """Sub-instance over slots ``[start, stop)`` (same network).

        Used by windowed controllers (FHC/RHC/RFHC/RRHC) and by the
        experiment runner to truncate horizons.
        """
        if not (0 <= start < stop <= self.horizon):
            raise ValueError(
                f"invalid slice [{start}, {stop}) for horizon {self.horizon}"
            )
        return Instance(
            network=self.network,
            workload=self.workload[start:stop],
            tier2_price=self.tier2_price[start:stop],
            link_price=self.link_price[start:stop],
            tier1_price=None
            if self.tier1_price is None
            else self.tier1_price[start:stop],
        )

    def with_data(
        self,
        workload: np.ndarray | None = None,
        tier2_price: np.ndarray | None = None,
        link_price: np.ndarray | None = None,
    ) -> "Instance":
        """Copy of the instance with some inputs replaced.

        Used by predictors to substitute noisy forecasts for the truth.
        """
        return Instance(
            network=self.network,
            workload=self.workload if workload is None else workload,
            tier2_price=self.tier2_price if tier2_price is None else tier2_price,
            link_price=self.link_price if link_price is None else link_price,
            tier1_price=self.tier1_price,
        )

    def total_workload(self) -> np.ndarray:
        """Aggregate workload ``sum_j lambda_{jt}`` as a ``(T,)`` array."""
        return self.workload.sum(axis=1)

    def __repr__(self) -> str:
        return f"Instance(T={self.horizon}, {self.network!r})"
