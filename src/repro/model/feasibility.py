"""Feasibility checks for instances and trajectories.

Two levels are provided:

* :func:`necessary_conditions` — the cheap vectorized checks stated in
  Section II-B (per-slot workload vs link and cloud capacity sums);
* :func:`check_instance_feasible` — an exact per-slot transportation
  feasibility test (a max-coverage LP), catching Hall-type violations
  the necessary conditions miss;
* :func:`check_trajectory` — verifies a produced trajectory against
  every constraint of the reformulated problem (2a)-(2e), (1b), (1c).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp
from scipy.optimize import linprog

from repro.model.allocation import Trajectory
from repro.model.instance import Instance


@dataclass
class FeasibilityReport:
    """Outcome of a feasibility check.

    ``violations`` maps a constraint label to the worst violation
    magnitude found (only entries exceeding the tolerance appear).
    """

    ok: bool
    violations: dict[str, float] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.ok

    def describe(self) -> str:
        if self.ok:
            return "feasible"
        parts = [f"{k}: {v:.3e}" for k, v in sorted(self.violations.items())]
        return "infeasible (" + "; ".join(parts) + ")"


def necessary_conditions(instance: Instance) -> FeasibilityReport:
    """Vectorized necessary feasibility conditions from the paper.

    Checks, for every slot ``t``:

    * ``sum_{i in I_j} B_ij >= lambda_jt`` for every tier-1 cloud ``j``;
    * ``sum_i C_i >= sum_j lambda_jt`` (aggregate tier-2 capacity);
    * if tier-1 capacities are finite: ``C_j >= lambda_jt``.
    """
    net = instance.network
    viol: dict[str, float] = {}

    link_sum = net.aggregate_tier1(net.edge_capacity)  # (J,)
    gap = instance.workload - link_sum[None, :]
    worst = float(gap.max(initial=-np.inf))
    if worst > 0:
        viol["link_capacity_sum"] = worst

    total_cap = float(net.tier2_capacity.sum())
    agg_gap = instance.total_workload() - total_cap
    worst = float(agg_gap.max(initial=-np.inf))
    if worst > 0:
        viol["tier2_capacity_sum"] = worst

    finite = np.isfinite(net.tier1_capacity)
    if finite.any():
        gap = instance.workload[:, finite] - net.tier1_capacity[None, finite]
        worst = float(gap.max(initial=-np.inf))
        if worst > 0:
            viol["tier1_capacity"] = worst

    return FeasibilityReport(ok=not viol, violations=viol)


def _coverage_lp(instance: Instance, t: int) -> float:
    """Maximum jointly-coverable fraction of slot-``t`` workload.

    Solves ``max theta`` s.t. ``s >= 0``, ``sum_{i in I_j} s_ij >=
    theta * lambda_jt``, ``sum_{j in J_i} s_ij <= C_i``,
    ``s_ij <= B_ij``.  A value ``>= 1`` means slot ``t`` is feasible.
    """
    net = instance.network
    lam = instance.workload[t]
    if lam.sum() <= 0:
        return np.inf
    n_e = net.n_edges
    # Variables: [s (E,), theta].
    c = np.zeros(n_e + 1)
    c[-1] = -1.0  # maximize theta

    rows = []
    rhs = []
    # Coverage: -sum_{e in I_j} s_e + lambda_j * theta <= 0 for all j.
    cov = sp.hstack(
        [-net.tier1_incidence, sp.csr_matrix(lam.reshape(-1, 1))]
    )
    rows.append(cov)
    rhs.append(np.zeros(net.n_tier1))
    # Tier-2 capacity: sum_{e in J_i} s_e <= C_i.
    cap = sp.hstack([net.tier2_incidence, sp.csr_matrix((net.n_tier2, 1))])
    rows.append(cap)
    rhs.append(net.tier2_capacity)

    A_ub = sp.vstack(rows, format="csr")
    b_ub = np.concatenate(rhs)
    bounds = [(0.0, float(B)) for B in net.edge_capacity] + [(0.0, None)]
    res = linprog(c, A_ub=A_ub, b_ub=b_ub, bounds=bounds, method="highs")
    if not res.success:
        return 0.0
    return float(-res.fun)


def check_instance_feasible(instance: Instance, rtol: float = 1e-9) -> FeasibilityReport:
    """Exact feasibility of every slot via the coverage LP.

    More expensive than :func:`necessary_conditions` (one small LP per
    slot) but exact: it catches cases where aggregate capacities
    suffice yet no SLA-respecting assignment exists.
    """
    viol: dict[str, float] = {}
    for t in range(instance.horizon):
        theta = _coverage_lp(instance, t)
        if theta < 1.0 - rtol:
            viol[f"slot_{t}_coverage"] = 1.0 - theta
    return FeasibilityReport(ok=not viol, violations=viol)


def check_trajectory(
    instance: Instance,
    trajectory: Trajectory,
    atol: float = 1e-6,
    rtol: float = 1e-6,
) -> FeasibilityReport:
    """Verify a trajectory against P1's constraints.

    Checks (vectorized over all slots):

    * (2a) ``x >= s``; (2b) ``y >= s``; (2e) ``s >= 0``;
    * (2d) ``sum_{i in I_j} s_ij >= lambda_jt``;
    * (1b) ``sum_{j in J_i} x_ijt <= C_i``;
    * (1c) ``y_ijt <= B_ij``.

    Tolerances are ``atol + rtol * scale`` with ``scale`` the relevant
    capacity/workload magnitude, so solver round-off is accepted.
    """
    net = instance.network
    if trajectory.horizon != instance.horizon:
        raise ValueError("trajectory/instance horizon mismatch")
    viol: dict[str, float] = {}

    def record(label: str, excess: np.ndarray, scale: np.ndarray | float) -> None:
        tol = atol + rtol * np.abs(scale)
        over = excess - tol
        worst = float(np.max(over, initial=-np.inf))
        if worst > 0:
            viol[label] = worst

    record("x_ge_s", trajectory.s - trajectory.x, np.maximum(trajectory.s, 1.0))
    record("y_ge_s", trajectory.s - trajectory.y, np.maximum(trajectory.s, 1.0))
    record("s_nonneg", -trajectory.s, 1.0)
    record("x_nonneg", -trajectory.x, 1.0)
    record("y_nonneg", -trajectory.y, 1.0)

    coverage = net.aggregate_tier1(trajectory.s)  # (T, J)
    record("coverage", instance.workload - coverage, np.maximum(instance.workload, 1.0))

    X = net.aggregate_tier2(trajectory.x)  # (T, I)
    record("tier2_capacity", X - net.tier2_capacity[None, :], net.tier2_capacity)

    record(
        "link_capacity",
        trajectory.y - net.edge_capacity[None, :],
        net.edge_capacity,
    )

    return FeasibilityReport(ok=not viol, violations=viol)
