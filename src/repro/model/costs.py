"""Cost evaluation: affine allocation costs + ``[.]^+`` reconfiguration.

Implements the objective of problem P1 (Section II-B):

* ``F_2``  (tier-2):  ``sum_t sum_i a_it X_it + sum_t sum_i b_i [X_it - X_i,t-1]^+``
  with ``X_it = sum_{j in J_i} x_ijt``;
* ``F_12`` (network): ``sum_t sum_e c_et y_et + sum_t sum_e d_e [y_et - y_e,t-1]^+``;
* ``F_1``  (tier-1, optional extension): analogous to ``F_2`` grouped
  by tier-1 cloud, using ``tier1_price`` and ``f_j``.

All computations are vectorized over slots and edges.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.allocation import Trajectory
from repro.model.instance import Instance


def pos_part(u: np.ndarray) -> np.ndarray:
    """Elementwise ``[u]^+ = max(u, 0)``."""
    return np.maximum(np.asarray(u, dtype=float), 0.0)


def reconfiguration_increments(
    series: np.ndarray, initial: np.ndarray | float = 0.0
) -> np.ndarray:
    """Per-slot increases ``[u_t - u_{t-1}]^+`` of a ``(T, K)`` series.

    ``initial`` is the state at slot ``-1`` (the paper uses 0: starting
    from nothing, the first slot's entire allocation is a
    reconfiguration).
    """
    series = np.atleast_2d(np.asarray(series, dtype=float))
    prev = np.vstack([np.broadcast_to(initial, series.shape[1:])[None, :], series[:-1]])
    return pos_part(series - prev)


@dataclass(frozen=True)
class CostBreakdown:
    """Per-slot cost decomposition of a trajectory.

    Attributes
    ----------
    tier2_alloc, tier2_recon:
        ``(T,)`` arrays: allocation / reconfiguration parts of ``F_2``.
    link_alloc, link_recon:
        ``(T,)`` arrays: the two parts of ``F_12``.
    tier1_alloc, tier1_recon:
        ``(T,)`` arrays for the optional ``F_1`` (zero when disabled).
    """

    tier2_alloc: np.ndarray
    tier2_recon: np.ndarray
    link_alloc: np.ndarray
    link_recon: np.ndarray
    tier1_alloc: np.ndarray
    tier1_recon: np.ndarray

    @property
    def per_slot(self) -> np.ndarray:
        """Total cost of each slot, ``(T,)``."""
        return (
            self.tier2_alloc
            + self.tier2_recon
            + self.link_alloc
            + self.link_recon
            + self.tier1_alloc
            + self.tier1_recon
        )

    @property
    def cumulative(self) -> np.ndarray:
        """Running total cost over time, ``(T,)`` (Fig. 5's y-axis)."""
        return np.cumsum(self.per_slot)

    @property
    def allocation_total(self) -> float:
        """Total allocation cost over the horizon."""
        return float(
            self.tier2_alloc.sum() + self.link_alloc.sum() + self.tier1_alloc.sum()
        )

    @property
    def reconfiguration_total(self) -> float:
        """Total reconfiguration cost over the horizon."""
        return float(
            self.tier2_recon.sum() + self.link_recon.sum() + self.tier1_recon.sum()
        )

    @property
    def total(self) -> float:
        """Grand total (allocation + reconfiguration)."""
        return self.allocation_total + self.reconfiguration_total


def evaluate_cost(
    instance: Instance,
    trajectory: Trajectory,
    initial: "object | None" = None,
    include_tier1: bool = False,
) -> CostBreakdown:
    """Evaluate ``F_12 + F_2`` (and optionally ``F_1``) of a trajectory.

    Parameters
    ----------
    instance:
        The problem inputs (prices, network).
    trajectory:
        The decisions to score; horizon must match the instance.
    initial:
        Optional :class:`~repro.model.allocation.Allocation` giving the
        state at slot ``-1`` (defaults to all-zero, as in the paper).
    include_tier1:
        When true, also charge the tier-1 term ``F_1`` using
        ``instance.tier1_price`` (requires allocations to satisfy
        ``z = x`` interpretation; we charge tier-1 on ``s`` totals,
        the resources actually serving local processing).
    """
    net = instance.network
    T = trajectory.horizon
    if T != instance.horizon:
        raise ValueError(
            f"trajectory horizon {T} != instance horizon {instance.horizon}"
        )

    # --- Tier-2 cost F_2 ------------------------------------------------
    X = net.aggregate_tier2(trajectory.x)  # (T, I)
    X0 = np.zeros(net.n_tier2)
    if initial is not None:
        X0 = net.aggregate_tier2(initial.x)
    tier2_alloc = np.einsum("ti,ti->t", instance.tier2_price, X)
    dX = reconfiguration_increments(X, X0)
    tier2_recon = dX @ net.tier2_recon_price

    # --- Network cost F_12 ----------------------------------------------
    y0 = np.zeros(net.n_edges)
    if initial is not None:
        y0 = np.asarray(initial.y, dtype=float)
    link_alloc = np.einsum("te,te->t", instance.link_price, trajectory.y)
    dY = reconfiguration_increments(trajectory.y, y0)
    link_recon = dY @ net.edge_recon_price

    # --- Optional tier-1 cost F_1 ----------------------------------------
    tier1_alloc = np.zeros(T)
    tier1_recon = np.zeros(T)
    if include_tier1:
        if instance.tier1_price is None:
            raise ValueError("include_tier1=True requires instance.tier1_price")
        Z = net.aggregate_tier1(trajectory.s)  # (T, J): tier-1 resources used
        Z0 = np.zeros(net.n_tier1)
        if initial is not None:
            Z0 = net.aggregate_tier1(initial.s)
        tier1_alloc = np.einsum("tj,tj->t", instance.tier1_price, Z)
        dZ = reconfiguration_increments(Z, Z0)
        tier1_recon = dZ @ net.tier1_recon_price

    return CostBreakdown(
        tier2_alloc=tier2_alloc,
        tier2_recon=tier2_recon,
        link_alloc=link_alloc,
        link_recon=link_recon,
        tier1_alloc=tier1_alloc,
        tier1_recon=tier1_recon,
    )
