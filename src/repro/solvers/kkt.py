"""First-order optimality verification for convex programs.

For a convex problem with linear constraints, a feasible point ``v`` is
optimal iff there is no feasible descent direction: the LP

.. math::

    \\min_d \\; \\nabla f(v)^T d \\quad \\text{s.t.} \\quad
    A_{act} d \\le 0, \\; d_k \\ge 0 \\;(lb\\text{ active}), \\;
    d_k \\le 0 \\;(ub\\text{ active}), \\; \\|d\\|_\\infty \\le 1

has optimal value 0.  :func:`first_order_certificate` returns that
optimal value (a small negative number indicates how far from
stationary the candidate is).  The test suite uses this to certify the
barrier solver and trust-constr against each other without trusting
either implementation.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.optimize import linprog

from repro.solvers.convex import SmoothConvexProgram


def first_order_certificate(
    prog: SmoothConvexProgram,
    v: np.ndarray,
    active_tol: float = 1e-6,
) -> float:
    """Best attainable directional derivative from ``v`` (0 = optimal).

    Parameters
    ----------
    prog:
        The convex program.
    v:
        Candidate solution (must be feasible up to ``active_tol``).
    active_tol:
        Constraints within this slack of equality count as active.

    Returns
    -------
    float
        The minimum of ``grad . d`` over unit-box feasible directions;
        values above ``-1e-6`` (scaled by the gradient norm) certify
        first-order optimality.
    """
    v = np.asarray(v, dtype=float)
    g = prog.objective.grad(v)
    n = g.shape[0]
    # Normalize by the objective's natural gradient scale, floored so a
    # near-zero gradient (interior optimum) is not amplified into a
    # spurious descent direction.
    scale = max(
        float(np.linalg.norm(g, np.inf)),
        float(np.linalg.norm(prog.objective.linear, np.inf)),
        1e-12,
    )

    rows = []
    if prog.A.shape[0]:
        slack = prog.b - prog.A @ v
        active = slack <= active_tol * (1.0 + np.abs(prog.b))
        if np.any(active):
            rows.append(sp.csr_matrix(prog.A[active]))
    A_ub = sp.vstack(rows, format="csr") if rows else None
    b_ub = np.zeros(A_ub.shape[0]) if A_ub is not None else None

    lb_active = np.isfinite(prog.lb) & (v - prog.lb <= active_tol * (1.0 + np.abs(prog.lb)))
    ub_active = np.isfinite(prog.ub) & (prog.ub - v <= active_tol * (1.0 + np.abs(prog.ub)))
    lo = np.where(lb_active, 0.0, -1.0)
    hi = np.where(ub_active, 0.0, 1.0)
    # A coordinate can be both active-low and active-high (fixed var).
    hi = np.maximum(hi, lo)

    res = linprog(
        g / scale,
        A_ub=A_ub,
        b_ub=b_ub,
        bounds=list(zip(lo, hi)),
        method="highs",
    )
    if not res.success:  # pragma: no cover - the LP is always feasible (d=0)
        raise RuntimeError(f"certificate LP failed: {res.message}")
    return float(res.fun)


def block_first_order_certificates(
    programs: "list[SmoothConvexProgram]",
    solutions: "list[np.ndarray]",
    active_tol: float = 1e-6,
) -> np.ndarray:
    """Per-block certificates for a block-diagonal system's solution.

    A batched backend solve is a set of independent block solves; the
    stacked system is first-order optimal iff every block is (the
    certificate LP decomposes along the block-diagonal structure).
    This returns one :func:`first_order_certificate` value per block so
    tests can certify a batched solution without reassembling one big
    coupled program.
    """
    if len(programs) != len(solutions):
        raise ValueError(
            f"{len(programs)} programs but {len(solutions)} solutions"
        )
    return np.array(
        [
            first_order_certificate(prog, v, active_tol=active_tol)
            for prog, v in zip(programs, solutions)
        ]
    )
