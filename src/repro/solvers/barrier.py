"""Log-barrier interior-point method for separable convex programs.

Solves :class:`~repro.solvers.convex.SmoothConvexProgram` instances by
classic path following (Boyd & Vandenberghe, ch. 11): minimize

.. math::

    \\phi_\\tau(v) = \\tau f(v)
        - \\sum_i \\log(b_i - a_i^T v)
        - \\sum_k \\log(v_k - lb_k) - \\sum_k \\log(ub_k - v_k)

by damped Newton steps for increasing :math:`\\tau`.  Because the
objective Hessian is diagonal, each Newton system is
``diag(h) + A^T D A`` with ``D`` diagonal.  At the problem sizes this
library solves thousands of times (n in the low hundreds) dense BLAS
beats sparse kernels by an order of magnitude, so the constraint
matrix is densified up to a size threshold (hpc guide: measured, not
guessed; see ``benchmarks/test_ablation_solvers.py``).

Numerical policy: the duality-gap stopping rule is *relative* to the
objective magnitude and the centering tolerance scales with ``tau`` —
chasing an absolute ``1e-8`` gap pushes ``tau`` beyond what double
precision supports and stalls Newton.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as la
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.solvers.convex import (
    ConvexSolverError,
    SmoothConvexProgram,
    SolveInfo,
    SolverOptions,
)

_DENSE_NNZ_THRESHOLD = 2_000_000  # m*n above this stays sparse
_MAX_BOUNDARY_FRACTION = 0.99
_ARMIJO_ALPHA = 0.1
_ARMIJO_BETA = 0.5


class _Workspace:
    """Precomputed constraint data for one program."""

    def __init__(self, prog: SmoothConvexProgram) -> None:
        self.prog = prog
        m, n = prog.A.shape
        self.dense = m * n <= _DENSE_NNZ_THRESHOLD
        self.A = prog.A.toarray() if self.dense else prog.A.tocsr()
        self.b = prog.b
        self.fin_lb = np.isfinite(prog.lb)
        self.fin_ub = np.isfinite(prog.ub)
        self.m_total = m + int(self.fin_lb.sum()) + int(self.fin_ub.sum())

    def slacks(self, v: np.ndarray) -> np.ndarray:
        if self.b.shape[0] == 0:
            return np.zeros(0)
        return self.b - self.A @ v

    def phi(self, v: np.ndarray, tau: float) -> float:
        """Barrier function value; +inf outside the strict interior."""
        slack = self.slacks(v)
        s_lb = v - self.prog.lb
        s_ub = self.prog.ub - v
        if (
            (slack.size and slack.min() <= 0.0)
            or np.any(s_lb[self.fin_lb] <= 0)
            or np.any(s_ub[self.fin_ub] <= 0)
        ):
            return np.inf
        val = tau * self.prog.objective.value(v)
        if slack.size:
            val -= float(np.sum(np.log(slack)))
        val -= float(np.sum(np.log(s_lb[self.fin_lb])))
        val -= float(np.sum(np.log(s_ub[self.fin_ub])))
        return val

    def newton_step(self, v: np.ndarray, tau: float) -> tuple[np.ndarray, float]:
        """Newton direction for phi_tau at ``v``; returns (dv, decrement^2)."""
        prog = self.prog
        obj = prog.objective
        grad = tau * obj.grad(v)
        hdiag = tau * obj.hess_diag(v)

        s_lb = np.where(self.fin_lb, v - prog.lb, 1.0)
        s_ub = np.where(self.fin_ub, prog.ub - v, 1.0)
        grad = (
            grad
            - np.where(self.fin_lb, 1.0 / s_lb, 0.0)
            + np.where(self.fin_ub, 1.0 / s_ub, 0.0)
        )
        hdiag = (
            hdiag
            + np.where(self.fin_lb, 1.0 / s_lb**2, 0.0)
            + np.where(self.fin_ub, 1.0 / s_ub**2, 0.0)
        )

        if self.b.shape[0]:
            slack = self.slacks(v)
            inv = 1.0 / slack
            grad = grad + self.A.T @ inv
            if self.dense:
                H = (self.A * (inv**2)[:, None]).T @ self.A
                H[np.diag_indices_from(H)] += hdiag
            else:
                D = sp.diags(inv**2)
                H = (sp.diags(hdiag) + self.A.T @ D @ self.A).tocsc()
        else:
            if self.dense:
                H = np.diag(hdiag)
            else:
                H = sp.diags(hdiag).tocsc()

        if self.dense:
            H[np.diag_indices_from(H)] += 1e-13 * (1.0 + np.abs(H.diagonal()))
            try:
                c, low = la.cho_factor(H, check_finite=False)
                dv = la.cho_solve((c, low), -grad, check_finite=False)
            except la.LinAlgError as exc:
                raise ConvexSolverError(f"Newton system not SPD: {exc}") from exc
        else:
            try:
                dv = spla.spsolve(H, -grad)
            except RuntimeError as exc:  # pragma: no cover - rare
                raise ConvexSolverError(f"sparse Newton solve failed: {exc}") from exc

        return dv, float(-grad @ dv)

    def max_step(self, v: np.ndarray, dv: np.ndarray) -> float:
        """Largest step keeping ``v + step*dv`` strictly interior."""
        prog = self.prog
        step = 1.0
        if self.b.shape[0]:
            Adv = self.A @ dv
            slack = self.slacks(v)
            pos = Adv > 0
            if np.any(pos):
                step = min(
                    step,
                    float(np.min(slack[pos] / Adv[pos])) * _MAX_BOUNDARY_FRACTION,
                )
        neg = (dv < 0) & self.fin_lb
        if np.any(neg):
            step = min(
                step,
                float(np.min((prog.lb[neg] - v[neg]) / dv[neg]))
                * _MAX_BOUNDARY_FRACTION,
            )
        pos = (dv > 0) & self.fin_ub
        if np.any(pos):
            step = min(
                step,
                float(np.min((prog.ub[pos] - v[pos]) / dv[pos]))
                * _MAX_BOUNDARY_FRACTION,
            )
        return step


def barrier_solve(
    prog: SmoothConvexProgram,
    v0: "np.ndarray | None" = None,
    options: "SolverOptions | None" = None,
    info: "SolveInfo | None" = None,
) -> np.ndarray:
    """Path-following barrier method; returns the optimal ``v``.

    ``v0`` may be any point; if it is not strictly interior a phase-I
    LP supplies one.  Raises :class:`ConvexSolverError` when Newton
    fails early on the path (the caller then falls back to
    trust-constr); a stall deep along the path — where the remaining
    gap is already below tolerance-sized — is accepted.
    """
    options = options or SolverOptions()
    ws = _Workspace(prog)
    if ws.m_total == 0:
        raise ConvexSolverError("barrier method needs at least one constraint")

    v = None
    if v0 is not None:
        v0 = np.asarray(v0, dtype=float)
        if np.isfinite(ws.phi(v0, 1.0)):
            v = v0.copy()
    if v is None:
        v = prog._interior_start()
        if not np.isfinite(ws.phi(v, 1.0)):
            raise ConvexSolverError("phase-I point not strictly interior")

    tau = options.barrier_t0
    while True:
        # Centering: damped Newton on phi_tau.  The decrement target
        # scales with tau (phi_tau's natural scale).
        center_tol = 1e-9 * (1.0 + tau * 1e-4)
        stalled = False
        for _ in range(options.max_newton):
            dv, dec_sq = ws.newton_step(v, tau)
            if info is not None:
                info.newton_iters += 1
            if dec_sq / 2.0 <= center_tol:
                break
            step = ws.max_step(v, dv)
            phi0 = ws.phi(v, tau)
            while step > 1e-14:
                if ws.phi(v + step * dv, tau) <= phi0 - _ARMIJO_ALPHA * step * dec_sq:
                    break
                step *= _ARMIJO_BETA
            else:
                stalled = True
                break
            v = v + step * dv
        else:
            stalled = True

        gap = ws.m_total / tau
        scale = 1.0 + abs(prog.objective.value(v))
        if gap <= options.tol * scale:
            return v
        if stalled:
            # Accept a late-path stall if the remaining gap is modest;
            # otherwise report failure so the caller can fall back.
            if gap <= 1e3 * options.tol * scale:
                return v
            raise ConvexSolverError(
                f"Newton stalled at tau={tau:.2e} (gap {gap:.2e}, scale {scale:.2e})"
            )
        tau *= options.barrier_mu
