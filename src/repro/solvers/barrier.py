"""Log-barrier interior-point method for separable convex programs.

Solves :class:`~repro.solvers.convex.SmoothConvexProgram` instances by
classic path following (Boyd & Vandenberghe, ch. 11): minimize

.. math::

    \\phi_\\tau(v) = \\tau f(v)
        - \\sum_i \\log(b_i - a_i^T v)
        - \\sum_k \\log(v_k - lb_k) - \\sum_k \\log(ub_k - v_k)

by damped Newton steps for increasing :math:`\\tau`.  Because the
objective Hessian is diagonal, each Newton system is
``diag(h) + A^T D A`` with ``D`` diagonal.  At the problem sizes this
library solves thousands of times (n in the low hundreds) dense BLAS
beats sparse kernels by an order of magnitude, so the constraint
matrix is densified up to a size threshold (hpc guide: measured, not
guessed; see ``benchmarks/test_ablation_solvers.py``).

Hot-path structure (measured in ``benchmarks/perf/``): the barrier
workspace is built once per program and cached on it — it precomputes
``A^T`` (contiguous, dense path), index arrays for the finite bounds,
preallocated Hessian/scaled-row buffers reused across Newton
iterations, and, on the sparse path, the symbolic expansion of
``A^T D A`` (the sparsity pattern is fixed across iterations, so each
iteration only rescales precomputed entry products and bin-sums them
into the fixed CSC structure).  The Armijo line search reuses the
already-computed slack vector and constraint-direction product
(``trial slack = slack - step * A dv``) instead of a fresh
matrix-vector product per trial point, which removes the dominant
per-trial cost.

Numerical policy: the duality-gap stopping rule is *relative* to the
objective magnitude and the centering tolerance scales with ``tau`` —
chasing an absolute ``1e-8`` gap pushes ``tau`` beyond what double
precision supports and stalls Newton.
"""

from __future__ import annotations

import time

import numpy as np
import scipy.linalg as la
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.obs import metrics as obs_metrics
from repro.obs import tracing as obs_tracing
from repro.solvers.convex import (
    ConvexSolverError,
    SmoothConvexProgram,
    SolveInfo,
    SolverOptions,
)

_DENSE_NNZ_THRESHOLD = 2_000_000  # m*n above this stays sparse
# Sparse A^T D A structure reuse stores one entry per nonzero product
# A_ki * A_kj; above this many the one-time memory cost outweighs the
# per-iteration win and the plain sparse product is used instead.
_TRIPLE_PRODUCT_PAIRS_THRESHOLD = 5_000_000
_MAX_BOUNDARY_FRACTION = 0.99
_ARMIJO_ALPHA = 0.1
_ARMIJO_BETA = 0.5


class _Workspace:
    """Precomputed constraint data and reusable buffers for one program.

    Built once per :class:`SmoothConvexProgram` and cached on it
    (``prog._barrier_ws``), so repeated solves of the same structure —
    the per-slot subproblem chain updates only ``b``, the linear cost
    and the regularizer anchors in place — skip all of the setup.
    ``b`` is held by reference and picks up in-place updates; ``A`` and
    the bound pattern must not change over the program's lifetime.
    """

    def __init__(self, prog: SmoothConvexProgram, dense: "bool | None" = None) -> None:
        self.prog = prog
        m, n = prog.A.shape
        self.dense = m * n <= _DENSE_NNZ_THRESHOLD if dense is None else bool(dense)
        self.A = prog.A.toarray() if self.dense else prog.A.tocsr()
        self.b = prog.b
        self.fin_lb = np.isfinite(prog.lb)
        self.fin_ub = np.isfinite(prog.ub)
        self.m_total = m + int(self.fin_lb.sum()) + int(self.fin_ub.sum())
        # Finite-bound fast path: when every bound is finite (the
        # subproblem default with capacity caps) the masked selects
        # collapse to whole-array arithmetic.
        self.all_lb = bool(self.fin_lb.all())
        self.all_ub = bool(self.fin_ub.all())
        self.idx_lb = np.flatnonzero(self.fin_lb)
        self.idx_ub = np.flatnonzero(self.fin_ub)
        self.lb_f = prog.lb[self.idx_lb]
        self.ub_f = prog.ub[self.idx_ub]
        # Scratch buffers for phi/newton_step: the solver's inner loop
        # is alloc-bound at subproblem sizes, so the hot kernels write
        # through ``out=``.  Same ops, same order — bitwise identical.
        self._s_lb = np.empty(n if self.all_lb else self.idx_lb.size)
        self._s_ub = np.empty(n if self.all_ub else self.idx_ub.size)
        self._log_m = np.empty(m)
        self._inv_m = np.empty(m)
        self._inv2_m = np.empty(m)
        self._bnd_n = np.empty(n)
        self._slack_m = np.empty(m)
        self._adv_m = np.empty(m)
        self._ms_r = np.empty(m)
        self._ms_mask = np.empty(m, dtype=bool)
        self._ms_q = np.empty(n)
        self._ms_qmask = np.empty(n, dtype=bool)
        self._not_fin_lb = ~self.fin_lb
        self._not_fin_ub = ~self.fin_ub
        self._gemv_n = np.empty(n)
        if self.dense:
            self.AT = np.ascontiguousarray(self.A.T)
            self._scaled = np.empty((m, n))
            self._H = np.empty((n, n))
            self._diag_flat = np.arange(n) * (n + 1)
            self._potrf, self._potrs = la.get_lapack_funcs(
                ("potrf", "potrs"), (self._H,)
            )
            self._triple = None
        else:
            self.AT = self.A.T.tocsr()
            self._triple = self._compile_triple_product(self.A, n)

    # ------------------------------------------------------------------
    @staticmethod
    def _compile_triple_product(A: sp.csr_matrix, n: int):
        """Symbolic expansion of ``A^T D A`` for structure reuse.

        The product's sparsity pattern is fixed across Newton
        iterations (only ``D`` changes), so the index arithmetic —
        which entry products ``A_ki A_kj`` land where in the CSC result
        — is done once.  Each iteration then just rescales the
        precomputed products by ``d_k`` and bin-sums them.  Returns
        ``None`` when the expansion would be too large (fall back to
        the plain sparse product per iteration).
        """
        m = A.shape[0]
        if m == 0:
            return None
        indptr, indices, data = A.indptr, A.indices, A.data
        row_nnz = np.diff(indptr).astype(np.int64)
        n_pairs = int((row_nnz**2).sum())
        if n_pairs == 0 or n_pairs > _TRIPLE_PRODUCT_PAIRS_THRESHOLD:
            return None
        # For constraint row k with L_k nonzeros, enumerate all L_k^2
        # ordered (i, j) column pairs: owner[k-block] = k, and within
        # the block position p -> (a, b) = (p // L_k, p % L_k).
        owner = np.repeat(np.arange(m), row_nnz**2)
        block_start = np.concatenate([[0], np.cumsum(row_nnz**2)[:-1]])
        blockpos = np.arange(n_pairs, dtype=np.int64) - block_start[owner]
        L = row_nnz[owner]
        start = indptr[:-1].astype(np.int64)[owner]
        a = start + blockpos // L
        b = start + blockpos % L
        pair_i = indices[a].astype(np.int64)
        pair_j = indices[b].astype(np.int64)
        pair_val = data[a] * data[b]
        # Guarantee every diagonal position exists so diag(h) can be
        # added in place (synthetic zero-valued entries, owner 0).
        diag_idx = np.arange(n, dtype=np.int64)
        pair_i = np.concatenate([pair_i, diag_idx])
        pair_j = np.concatenate([pair_j, diag_idx])
        pair_val = np.concatenate([pair_val, np.zeros(n)])
        owner = np.concatenate([owner, np.zeros(n, dtype=owner.dtype)])
        # Canonical CSC order: sort by (column, row).
        keys = pair_j * n + pair_i
        uniq, pos = np.unique(keys, return_inverse=True)
        csc_rows = (uniq % n).astype(np.int32)
        csc_cols = uniq // n
        indptr_u = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(csc_cols, minlength=n), out=indptr_u[1:])
        diag_pos = np.flatnonzero(csc_rows == csc_cols.astype(np.int32))
        return {
            "pos": pos,
            "vals": pair_val,
            "owner": owner,
            "nnz": uniq.size,
            "indices": csc_rows,
            "indptr": indptr_u,
            "diag": diag_pos,
        }

    # ------------------------------------------------------------------
    def slacks(self, v: np.ndarray, buffered: bool = False) -> np.ndarray:
        """``b - A v``; with ``buffered`` the result lives in a scratch
        array owned by the workspace (overwritten by the next buffered
        call — the solve loop consumes it before then)."""
        if self.b.shape[0] == 0:
            return np.zeros(0)
        if buffered and self.dense:
            out = self._slack_m
            np.dot(self.A, v, out=out)
            np.subtract(self.b, out, out=out)
            return out
        return self.b - self.A @ v

    def phi(self, v: np.ndarray, tau: float, slack: "np.ndarray | None" = None) -> float:
        """Barrier function value; +inf outside the strict interior.

        ``slack`` may be supplied by the caller (e.g. the line search's
        incrementally updated ``slack - step * A dv``) to skip the
        matrix-vector product.
        """
        prog = self.prog
        if slack is None:
            slack = self.slacks(v)
        if self.all_lb:
            s_lb = np.subtract(v, prog.lb, out=self._s_lb)
        else:
            s_lb = np.subtract(v[self.idx_lb], self.lb_f, out=self._s_lb)
        if self.all_ub:
            s_ub = np.subtract(prog.ub, v, out=self._s_ub)
        else:
            s_ub = np.subtract(self.ub_f, v[self.idx_ub], out=self._s_ub)
        # Boundary detection rides on the logs instead of three extra
        # min-reductions (the hot line search calls phi tens of
        # thousands of times per trajectory): a zero slack gives
        # log -> -inf -> val=+inf, a negative one gives nan, mapped to
        # +inf below.  Interior values are bitwise unchanged.
        with np.errstate(divide="ignore", invalid="ignore"):
            val = tau * prog.objective.value(v)
            # np.add.reduce is what ndarray.sum dispatches to; calling
            # it directly skips two wrapper layers on the hottest line.
            if slack.size:
                val -= float(np.add.reduce(np.log(slack, out=self._log_m)))
            if s_lb.size:
                val -= float(np.add.reduce(np.log(s_lb, out=s_lb)))
            if s_ub.size:
                val -= float(np.add.reduce(np.log(s_ub, out=s_ub)))
        if val != val:
            return np.inf
        return val

    def newton_step(
        self,
        v: np.ndarray,
        tau: float,
        slack: "np.ndarray | None" = None,
        fact_out: "list[float] | None" = None,
    ) -> tuple[np.ndarray, float]:
        """Newton direction for phi_tau at ``v``; returns (dv, decrement^2).

        ``fact_out`` is an optional one-element accumulator for the
        seconds spent factorizing/solving the Newton system — supplied
        only while the metrics registry is enabled, so the disabled
        path pays no clock reads.
        """
        prog = self.prog
        obj = prog.objective
        n = obj.n
        grad = obj.grad(v)
        np.multiply(grad, tau, out=grad)
        hdiag = obj.hess_diag(v)
        np.multiply(hdiag, tau, out=hdiag)

        bb = self._bnd_n
        if self.all_lb:
            inv_lb = np.divide(1.0, np.subtract(v, prog.lb, out=bb), out=bb)
            grad -= inv_lb
            hdiag += np.multiply(inv_lb, inv_lb, out=bb)
        elif self.idx_lb.size:
            inv_lb = 1.0 / (v[self.idx_lb] - self.lb_f)
            grad[self.idx_lb] -= inv_lb
            hdiag[self.idx_lb] += inv_lb * inv_lb
        if self.all_ub:
            inv_ub = np.divide(1.0, np.subtract(prog.ub, v, out=bb), out=bb)
            grad += inv_ub
            hdiag += np.multiply(inv_ub, inv_ub, out=bb)
        elif self.idx_ub.size:
            inv_ub = 1.0 / (self.ub_f - v[self.idx_ub])
            grad[self.idx_ub] += inv_ub
            hdiag[self.idx_ub] += inv_ub * inv_ub

        if self.b.shape[0]:
            if slack is None:
                slack = self.slacks(v)
            inv = np.divide(1.0, slack, out=self._inv_m)
            inv2 = np.multiply(inv, inv, out=self._inv2_m)
            if self.dense:
                grad += np.dot(self.AT, inv, out=self._gemv_n)
            else:
                grad = grad + self.AT @ inv
            if self.dense:
                np.multiply(self.A, inv2[:, None], out=self._scaled)
                H = np.dot(self.AT, self._scaled, out=self._H)
                Hd = H.reshape(-1)
                Hd[self._diag_flat] += hdiag
            elif self._triple is not None:
                tp = self._triple
                data = np.bincount(
                    tp["pos"],
                    weights=tp["vals"] * inv2[tp["owner"]],
                    minlength=tp["nnz"],
                )
                data[tp["diag"]] += hdiag
                H = sp.csc_matrix(
                    (data, tp["indices"], tp["indptr"]), shape=(n, n)
                )
            else:
                D = sp.diags(inv2)
                H = (sp.diags(hdiag) + self.A.T @ D @ self.A).tocsc()
        else:
            if self.dense:
                H = self._H
                H.fill(0.0)
                H.reshape(-1)[self._diag_flat] = hdiag
            else:
                H = sp.diags(hdiag).tocsc()

        fact_start = time.perf_counter() if fact_out is not None else 0.0
        if self.dense:
            Hd = H.reshape(-1)
            diag = Hd[self._diag_flat]
            Hd[self._diag_flat] = diag + 1e-13 * (1.0 + np.abs(diag))
            # Direct LAPACK Cholesky on the reusable buffer (the
            # cho_factor/cho_solve wrappers cost ~10% of a solve at
            # these sizes).  Same routines, same numerics.
            c, info = self._potrf(H, lower=False, overwrite_a=True, clean=False)
            if info != 0:
                raise ConvexSolverError(f"Newton system not SPD (potrf info={info})")
            dv, info = self._potrs(c, -grad, lower=False)
            if info != 0:  # pragma: no cover - potrs only fails on bad args
                raise ConvexSolverError(f"Cholesky solve failed (potrs info={info})")
        else:
            try:
                dv = spla.spsolve(H, -grad)
            except RuntimeError as exc:  # pragma: no cover - rare
                raise ConvexSolverError(f"sparse Newton solve failed: {exc}") from exc
        if fact_out is not None:
            fact_out[0] += time.perf_counter() - fact_start

        return dv, float(-grad @ dv)

    def max_step(
        self,
        v: np.ndarray,
        dv: np.ndarray,
        slack: "np.ndarray | None" = None,
        Adv: "np.ndarray | None" = None,
    ) -> float:
        """Largest step keeping ``v + step*dv`` strictly interior."""
        prog = self.prog
        step = 1.0
        # Masked-select ratios via full-array divides into scratch
        # buffers, with non-candidate entries overwritten by +inf
        # before the min: the surviving values — and hence the min —
        # are bitwise those of the boolean-indexed reference
        # expressions, without the fancy-indexing copies.  A min of
        # +inf (no candidate) leaves ``step`` untouched.
        with np.errstate(divide="ignore", invalid="ignore"):
            if self.b.shape[0]:
                if Adv is None:
                    Adv = self.A @ dv
                if slack is None:
                    slack = self.slacks(v)
                r = np.divide(slack, Adv, out=self._ms_r)
                np.less_equal(Adv, 0.0, out=self._ms_mask)
                np.copyto(r, np.inf, where=self._ms_mask)
                m = float(np.minimum.reduce(r)) * _MAX_BOUNDARY_FRACTION
                if m < step:
                    step = m
            q, qmask = self._ms_q, self._ms_qmask
            np.subtract(prog.lb, v, out=q)
            np.divide(q, dv, out=q)
            np.greater_equal(dv, 0.0, out=qmask)
            if not self.all_lb:
                qmask |= self._not_fin_lb
            np.copyto(q, np.inf, where=qmask)
            m = float(np.minimum.reduce(q)) * _MAX_BOUNDARY_FRACTION
            if m < step:
                step = m
            np.subtract(prog.ub, v, out=q)
            np.divide(q, dv, out=q)
            np.less_equal(dv, 0.0, out=qmask)
            if not self.all_ub:
                qmask |= self._not_fin_ub
            np.copyto(q, np.inf, where=qmask)
            m = float(np.minimum.reduce(q)) * _MAX_BOUNDARY_FRACTION
            if m < step:
                step = m
        return step


def _workspace(prog: SmoothConvexProgram) -> _Workspace:
    """The program's cached barrier workspace, built on first use.

    Rebuilt if the dense/sparse decision changes (the threshold is
    module state so tests can force the sparse path)."""
    m, n = prog.A.shape
    want_dense = m * n <= _DENSE_NNZ_THRESHOLD
    ws = prog._barrier_ws
    if ws is None or ws.dense != want_dense:
        ws = _Workspace(prog, dense=want_dense)
        prog._barrier_ws = ws
    return ws


def barrier_solve(
    prog: SmoothConvexProgram,
    v0: "np.ndarray | None" = None,
    options: "SolverOptions | None" = None,
    info: "SolveInfo | None" = None,
) -> np.ndarray:
    """Path-following barrier method; returns the optimal ``v``.

    ``v0`` may be any point; if it is not strictly interior a phase-I
    LP supplies one.  Raises :class:`ConvexSolverError` when Newton
    fails early on the path (the caller then falls back to
    trust-constr); a stall deep along the path — where the remaining
    gap is already below tolerance-sized — is accepted.
    """
    options = options or SolverOptions()
    ws = _workspace(prog)
    if ws.m_total == 0:
        raise ConvexSolverError("barrier method needs at least one constraint")
    has_rows = ws.b.shape[0] > 0

    # Observability: resolved once per solve.  While the registry is
    # disabled (the default) ``reg`` is None, ``fact_out`` stays None
    # (newton_step then reads no clocks) and only the two integer
    # tallies below run — the instrumentation cost of a disabled solve
    # is a handful of local increments.
    reg = obs_metrics.active()
    fact_out: "list[float] | None" = [0.0] if reg is not None else None
    newton_here = 0
    backtracks = 0

    def _publish(outcome: str) -> None:
        if info is not None:
            info.backtracks += backtracks
            if fact_out is not None:
                info.fact_time_s += fact_out[0]
        if reg is not None:
            reg.counter(
                "solver_solves_total",
                help="optimization solves by backend and outcome",
                backend="barrier",
                outcome=outcome,
            ).inc()
            reg.counter(
                "solver_newton_iters_total",
                help="Newton iterations spent in the barrier solver",
            ).inc(newton_here)
            reg.counter(
                "solver_backtracks_total",
                help="Armijo line-search backtracking steps",
            ).inc(backtracks)
            reg.histogram(
                "solver_factorization_seconds",
                help="Newton-system assembly + factorization time per solve",
            ).observe(fact_out[0])

    v = None
    if v0 is not None:
        v0 = np.asarray(v0, dtype=float)
        if np.isfinite(ws.phi(v0, 1.0)):
            v = v0.copy()
    if v is None:
        v = prog._interior_start()
        if not np.isfinite(ws.phi(v, 1.0)):
            raise ConvexSolverError("phase-I point not strictly interior")

    tau = options.barrier_t0
    span = obs_tracing.span("barrier.solve", n=prog.objective.n)
    # Line-search scratch (same ops as the allocating expressions they
    # replace — ``x + step*y`` — so trial points are bitwise unchanged).
    trial_v = np.empty_like(v)
    trial_s = np.empty(ws.b.shape[0])
    with span:
        while True:
            # Centering: damped Newton on phi_tau.  The decrement target
            # scales with tau (phi_tau's natural scale).
            center_tol = 1e-9 * (1.0 + tau * 1e-4)
            stalled = False
            for _ in range(options.max_newton):
                slack = ws.slacks(v, buffered=True)
                dv, dec_sq = ws.newton_step(v, tau, slack=slack, fact_out=fact_out)
                newton_here += 1
                if info is not None:
                    info.newton_iters += 1
                if dec_sq / 2.0 <= center_tol:
                    break
                if has_rows:
                    if ws.dense:
                        Adv = np.dot(ws.A, dv, out=ws._adv_m)
                    else:
                        Adv = ws.A @ dv
                else:
                    Adv = slack
                step = ws.max_step(v, dv, slack=slack, Adv=Adv)
                phi0 = ws.phi(v, tau, slack=slack)
                while step > 1e-14:
                    if has_rows:
                        np.multiply(Adv, step, out=trial_s)
                        trial_slack = np.subtract(slack, trial_s, out=trial_s)
                    else:
                        trial_slack = slack
                    np.multiply(dv, step, out=trial_v)
                    np.add(v, trial_v, out=trial_v)
                    trial_phi = ws.phi(trial_v, tau, slack=trial_slack)
                    if trial_phi <= phi0 - _ARMIJO_ALPHA * step * dec_sq:
                        break
                    step *= _ARMIJO_BETA
                    backtracks += 1
                else:
                    stalled = True
                    break
                # The accepted trial point was just materialized in
                # trial_v; adopt it and recycle the old ``v`` array as the
                # next trial scratch.
                v, trial_v = trial_v, v
            else:
                stalled = True

            gap = ws.m_total / tau
            scale = 1.0 + abs(prog.objective.value(v))
            if gap <= options.tol * scale:
                span.set(newton_iters=newton_here, backtracks=backtracks)
                _publish("converged")
                return v
            if stalled:
                # Accept a late-path stall if the remaining gap is modest;
                # otherwise report failure so the caller can fall back.
                if gap <= 1e3 * options.tol * scale:
                    span.set(newton_iters=newton_here, backtracks=backtracks)
                    _publish("converged")
                    return v
                span.set(
                    newton_iters=newton_here, backtracks=backtracks, stalled=True
                )
                _publish("stalled")
                raise ConvexSolverError(
                    f"Newton stalled at tau={tau:.2e} (gap {gap:.2e}, scale {scale:.2e})"
                )
            tau *= options.barrier_mu
