"""Smooth convex programs with linear inequality constraints.

This is the solver interface used for the regularized subproblems
P2(t).  A program is

.. math::

    \\min_v \\; f(v) \\quad \\text{s.t.} \\quad A v \\le b, \\;
    lb \\le v \\le ub,

where :math:`f` is separable: a linear part plus *entropic* terms of
the form :math:`w\\,((v_k+\\varepsilon)\\ln\\frac{v_k+\\varepsilon}{\\hat v_k+\\varepsilon} - v_k)`
— exactly the regularizers the paper substitutes for the
``[.]^+`` reconfiguration costs.  Separability gives a diagonal
Hessian, which both backends exploit.

Backends
--------
``"barrier"`` (default)
    Our own log-barrier Newton method (:mod:`repro.solvers.barrier`);
    fast because the Newton systems are ``diag + A^T D A`` with small
    dense/sparse structure.
``"trust-constr"``
    ``scipy.optimize.minimize`` with analytic gradient and Hessian;
    slower but an independent implementation used for cross-checks.

On a barrier failure the wrapper automatically falls back to
``trust-constr`` so algorithm runs never die on a single hard slot.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp
from scipy.optimize import Bounds, LinearConstraint, minimize


class ConvexSolverError(RuntimeError):
    """Raised when no backend can solve the program."""


@dataclass
class SolveInfo:
    """Bookkeeping for one :meth:`SmoothConvexProgram.solve` call.

    Attributes
    ----------
    backend:
        The backend that produced the returned point.
    newton_iters:
        Newton (barrier) or trust-region iterations spent, summed over
        backends when a fallback was needed.
    backtracks:
        Armijo line-search backtracking steps taken (barrier only).
    fact_time_s:
        Seconds spent assembling and factorizing Newton systems
        (barrier only; measured only while the metrics registry is
        enabled, otherwise stays 0.0).
    fallback:
        True when the requested backend failed and a fallback backend
        produced the result.
    """

    backend: str = ""
    newton_iters: int = 0
    backtracks: int = 0
    fact_time_s: float = 0.0
    fallback: bool = False


@dataclass
class EntropicTerm:
    """A group of relative-entropy regularizer terms.

    Contributes ``sum_k w_k ((v_k + eps_k) ln((v_k + eps_k)/(ref_k + eps_k)) - v_k)``
    over the variables ``indices``; ``ref`` is the previous-slot value
    the regularizer anchors to.
    """

    indices: np.ndarray
    weight: np.ndarray
    eps: np.ndarray
    ref: np.ndarray

    def __post_init__(self) -> None:
        self.indices = np.asarray(self.indices, dtype=np.intp)
        n = self.indices.shape[0]
        self.weight = np.broadcast_to(np.asarray(self.weight, float), (n,)).copy()
        self.eps = np.broadcast_to(np.asarray(self.eps, float), (n,)).copy()
        self.ref = np.broadcast_to(np.asarray(self.ref, float), (n,)).copy()
        if np.any(self.eps <= 0):
            raise ValueError("entropic eps must be > 0")
        if np.any(self.weight < 0):
            raise ValueError("entropic weight must be >= 0")
        if np.any(self.ref < 0):
            raise ValueError("entropic ref must be >= 0")


class SeparableObjective:
    """Linear + entropic separable objective with analytic derivatives.

    The entropic terms are *compiled* at construction into flat
    concatenated arrays (indices, weights, eps, refs); ``value``,
    ``grad`` and ``hess_diag`` then run a handful of vectorized
    operations over one array instead of a Python loop over terms with
    ``np.add.at`` scatters.  When the concatenated indices contain no
    duplicates (the common case: each variable appears in at most one
    term) the scatter degenerates to direct fancy/slice assignment,
    which is roughly an order of magnitude faster than ``np.add.at``.
    Duplicate and overlapping indices keep exact ``np.add.at``
    accumulation semantics through the slow path.

    ``fused=False`` selects the straightforward per-term loop
    implementation; it is the measured perf baseline
    (``benchmarks/perf/``) and the reference the fused kernels are
    property-tested against.
    """

    def __init__(
        self,
        n: int,
        linear: np.ndarray,
        entropic: "list[EntropicTerm] | None" = None,
        constant: float = 0.0,
        fused: bool = True,
    ) -> None:
        self.n = int(n)
        self.linear = np.broadcast_to(np.asarray(linear, float), (self.n,)).copy()
        self.entropic = list(entropic or [])
        self.constant = float(constant)
        self.fused = bool(fused)
        for term in self.entropic:
            if term.indices.size and term.indices.max() >= self.n:
                raise ValueError("entropic term indexes out of range")
        self._compile()

    # The entropic terms are only defined for v > -eps; iterates from
    # generic solvers (e.g. trust-constr trial points) can momentarily
    # dip below, so the domain is clamped at a tiny positive slack —
    # the clamp is never active at feasible points (lb >= 0 > -eps).
    _DOMAIN_FLOOR = 1e-12

    # ------------------------------------------------------------------
    # Compiled (fused) representation
    # ------------------------------------------------------------------
    def _compile(self) -> None:
        """Flatten the entropic terms into contiguous kernel arrays."""
        terms = self.entropic
        if terms:
            self._f_idx = np.concatenate([t.indices for t in terms])
            self._f_w = np.concatenate([t.weight for t in terms])
            self._f_eps = np.concatenate([t.eps for t in terms])
            self._f_ref = np.concatenate([t.ref for t in terms])
        else:
            self._f_idx = np.zeros(0, dtype=np.intp)
            self._f_w = np.zeros(0)
            self._f_eps = np.zeros(0)
            self._f_ref = np.zeros(0)
        self._f_r = self._f_ref + self._f_eps
        # Term boundaries inside the concatenated arrays; value() sums
        # each segment separately so its float result is bitwise
        # identical to the per-term loop (same pairwise-summation
        # trees, same accumulation order) — the barrier's Newton path
        # is ulp-sensitive and must not depend on which kernel runs.
        sizes = [t.indices.shape[0] for t in terms]
        offsets = np.cumsum([0] + sizes)
        self._f_segments = [
            (int(offsets[i]), int(offsets[i + 1])) for i in range(len(terms))
        ]
        idx = self._f_idx
        # Gather/scatter fast paths: a contiguous index range becomes a
        # slice; unique indices allow direct fancy assignment.
        self._f_slice = None
        if idx.size and idx[0] + idx.size - 1 == idx[-1] and np.array_equal(
            idx, np.arange(idx[0], idx[0] + idx.size)
        ):
            self._f_slice = slice(int(idx[0]), int(idx[0]) + idx.size)
        self._f_unique = bool(
            self._f_slice is not None or np.unique(idx).size == idx.size
        )
        # Scratch buffers: the kernels run inside the barrier line
        # search (tens of thousands of calls per trajectory), so they
        # write through ``out=`` instead of allocating.  Results are
        # bitwise identical — same elementwise ops in the same order.
        k = idx.size
        self._s_u = np.empty(k)
        self._s_lr = np.empty(k)
        self._s_d = np.empty(k)
        self._s_mask = np.empty(k, dtype=bool)

    def set_slot_data(
        self,
        linear: "np.ndarray | None" = None,
        refs: "list[np.ndarray] | None" = None,
    ) -> None:
        """Update per-slot data in place, keeping the compiled arrays.

        ``linear`` replaces the linear cost vector; ``refs`` replaces
        each entropic term's anchor (one array per term, broadcastable
        to the term's size).  Structure — indices, weights, eps — is
        untouched, so a subproblem reused across slots pays no
        recompilation cost.
        """
        if linear is not None:
            self.linear[:] = linear
        if refs is not None:
            if len(refs) != len(self.entropic):
                raise ValueError(
                    f"expected {len(self.entropic)} ref arrays, got {len(refs)}"
                )
            offset = 0
            for term, ref in zip(self.entropic, refs):
                size = term.indices.shape[0]
                ref = np.broadcast_to(np.asarray(ref, float), (size,))
                if np.any(ref < 0):
                    raise ValueError("entropic ref must be >= 0")
                term.ref[:] = ref
                self._f_ref[offset : offset + size] = ref
                offset += size
            np.add(self._f_ref, self._f_eps, out=self._f_r)

    def _gather(self, v: np.ndarray) -> np.ndarray:
        return v[self._f_slice] if self._f_slice is not None else v[self._f_idx]

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------
    @staticmethod
    def _log_ratio(term: EntropicTerm, vk: np.ndarray, u: np.ndarray,
                   r: np.ndarray) -> np.ndarray:
        """``ln((v+eps)/(ref+eps))`` via ``log1p((v-ref)/(ref+eps))``.

        For large ``eps`` the regularizer weights ``w = b/eta`` blow up
        while the two log arguments become nearly equal; the log of the
        rounded ratio then loses the entire signal (absolute error
        ~``u * eps_mach``, amplified by ``w`` into O(1) objective noise
        that stalls line searches).  Using the *exact* difference
        ``v - ref`` inside ``log1p`` keeps full relative accuracy.
        """
        # Where the domain clamp is active (v < -eps, transient solver
        # trial points only) fall back to the clamped difference.
        delta = np.where(u > SeparableObjective._DOMAIN_FLOOR, vk - term.ref, u - r)
        return np.log1p(delta / r)

    def _fused_u(self, vk: np.ndarray) -> np.ndarray:
        """``max(v + eps, floor)`` into the ``_s_u`` scratch buffer."""
        u = self._s_u
        np.add(vk, self._f_eps, out=u)
        np.maximum(u, self._DOMAIN_FLOOR, out=u)
        return u

    def _fused_log_ratio(self, vk: np.ndarray, u: np.ndarray) -> np.ndarray:
        """Fused-array counterpart of :meth:`_log_ratio`.

        Writes into the ``_s_lr`` scratch buffer; ``np.copyto(...,
        where=)`` realizes the same select as the loop reference's
        ``np.where`` bit for bit.
        """
        lr = self._s_lr
        if np.minimum.reduce(u) > self._DOMAIN_FLOOR:
            # No clamp active (every feasible point): the select below
            # would take the exact branch everywhere.
            np.subtract(vk, self._f_ref, out=lr)
        else:
            d = self._s_d
            np.subtract(u, self._f_r, out=lr)      # clamped branch
            np.subtract(vk, self._f_ref, out=d)    # exact branch
            np.greater(u, self._DOMAIN_FLOOR, out=self._s_mask)
            np.copyto(lr, d, where=self._s_mask)
        np.divide(lr, self._f_r, out=lr)
        return np.log1p(lr, out=lr)

    def value(self, v: np.ndarray) -> float:
        if not self.fused:
            return self._value_loop(v)
        total = self.constant + float(self.linear @ v)
        if self._f_idx.size:
            vk = self._gather(v)
            u = self._fused_u(vk)
            lr = self._fused_log_ratio(vk, u)
            # Per-term segment sums (pairwise summation) rather than
            # one BLAS dot over the concatenation: the barrier
            # evaluates tau * value with tau up to ~1e10, so last-ulp
            # summation differences here become line-search noise that
            # measurably stalls Newton near the path's end.  Segment
            # sums keep the result bitwise equal to the loop reference.
            np.multiply(u, lr, out=u)
            np.subtract(u, vk, out=u)
            np.multiply(self._f_w, u, out=u)
            for lo, hi in self._f_segments:
                total += float(np.add.reduce(u[lo:hi]))
        return total

    def grad(self, v: np.ndarray) -> np.ndarray:
        if not self.fused:
            return self._grad_loop(v)
        g = self.linear.copy()
        if self._f_idx.size:
            vk = self._gather(v)
            u = self._fused_u(vk)
            # d/dv [(v+e) ln((v+e)/(r+e)) - v] = ln((v+e)/(r+e))
            lr = self._fused_log_ratio(vk, u)
            np.multiply(self._f_w, lr, out=lr)
            self._scatter_add(g, lr)
        return g

    def hess_diag(self, v: np.ndarray) -> np.ndarray:
        if not self.fused:
            return self._hess_diag_loop(v)
        h = np.zeros(self.n)
        if self._f_idx.size:
            u = self._fused_u(self._gather(v))
            np.divide(self._f_w, u, out=u)
            self._scatter_add(h, u)
        return h

    def _scatter_add(self, out: np.ndarray, contrib: np.ndarray) -> None:
        if self._f_slice is not None:
            out[self._f_slice] += contrib
        elif self._f_unique:
            out[self._f_idx] += contrib
        else:
            np.add.at(out, self._f_idx, contrib)

    # ------------------------------------------------------------------
    # Loop reference (perf baseline + property-test oracle)
    # ------------------------------------------------------------------
    def _value_loop(self, v: np.ndarray) -> float:
        total = self.constant + float(self.linear @ v)
        for term in self.entropic:
            vk = v[term.indices]
            u = np.maximum(vk + term.eps, self._DOMAIN_FLOOR)
            r = term.ref + term.eps
            total += float(
                np.sum(term.weight * (u * self._log_ratio(term, vk, u, r) - vk))
            )
        return total

    def _grad_loop(self, v: np.ndarray) -> np.ndarray:
        g = self.linear.copy()
        for term in self.entropic:
            vk = v[term.indices]
            u = np.maximum(vk + term.eps, self._DOMAIN_FLOOR)
            r = term.ref + term.eps
            np.add.at(g, term.indices, term.weight * self._log_ratio(term, vk, u, r))
        return g

    def _hess_diag_loop(self, v: np.ndarray) -> np.ndarray:
        h = np.zeros(self.n)
        for term in self.entropic:
            u = np.maximum(v[term.indices] + term.eps, self._DOMAIN_FLOOR)
            np.add.at(h, term.indices, term.weight / u)
        return h


@dataclass
class SolverOptions:
    """Tuning knobs for :meth:`SmoothConvexProgram.solve`.

    Defaults are suitable for the subproblem sizes in this library
    (tens to a few hundred variables, solved thousands of times).
    """

    backend: str = "barrier"
    tol: float = 1e-7
    barrier_t0: float = 1.0
    barrier_mu: float = 20.0
    max_newton: int = 80
    fallback: bool = True
    trust_constr_tol: float = 1e-9
    trust_constr_maxiter: int = 500


class SmoothConvexProgram:
    """``min f(v) s.t. A v <= b, lb <= v <= ub`` with separable smooth ``f``."""

    def __init__(
        self,
        objective: SeparableObjective,
        A: "sp.spmatrix | np.ndarray | None",
        b: "np.ndarray | None",
        lb: np.ndarray,
        ub: np.ndarray,
    ) -> None:
        self.objective = objective
        n = objective.n
        if A is None:
            A = sp.csr_matrix((0, n))
            b = np.zeros(0)
        self.A = sp.csr_matrix(A)
        self.b = np.atleast_1d(np.asarray(b, float))
        if self.A.shape != (self.b.shape[0], n):
            raise ValueError(
                f"A has shape {self.A.shape}, expected ({self.b.shape[0]}, {n})"
            )
        self.lb = np.broadcast_to(np.asarray(lb, float), (n,)).copy()
        self.ub = np.broadcast_to(np.asarray(ub, float), (n,)).copy()
        if np.any(self.lb > self.ub):
            raise ValueError("lb > ub")
        self.last_info = SolveInfo()
        # Caches reused across solves of the same structure: the
        # phase-I interior point (valid as long as it stays strictly
        # interior after in-place b updates) and the barrier method's
        # workspace (owned by repro.solvers.barrier; depends only on A
        # and the bound pattern, both fixed for a program's lifetime).
        self._phase1_cache: "np.ndarray | None" = None
        self._barrier_ws = None

    # ------------------------------------------------------------------
    def residual(self, v: np.ndarray) -> float:
        """Worst constraint violation at ``v`` (<= 0 means feasible)."""
        parts = [np.max(self.lb - v, initial=-np.inf), np.max(v - self.ub, initial=-np.inf)]
        if self.A.shape[0]:
            parts.append(float(np.max(self.A @ v - self.b)))
        return float(max(parts))

    def solve(
        self,
        v0: "np.ndarray | None" = None,
        options: "SolverOptions | None" = None,
    ) -> np.ndarray:
        """Solve the program, optionally warm-starting from ``v0``.

        Returns the optimal ``v``; raises :class:`ConvexSolverError`
        if every backend fails.  Iteration counts and the backend that
        produced the result are recorded in :attr:`last_info`.
        """
        options = options or SolverOptions()
        backends = [options.backend]
        if options.fallback and options.backend != "trust-constr":
            backends.append("trust-constr")
        errors: list[str] = []
        info = SolveInfo()
        self.last_info = info
        for idx, backend in enumerate(backends):
            info.backend = backend
            info.fallback = idx > 0
            try:
                if backend == "barrier":
                    from repro.solvers.barrier import barrier_solve

                    return barrier_solve(self, v0=v0, options=options, info=info)
                if backend == "trust-constr":
                    return self._solve_trust_constr(v0, options, info=info)
                raise ConvexSolverError(f"unknown backend {backend!r}")
            except ConvexSolverError as exc:  # try the next backend
                errors.append(f"{backend}: {exc}")
        raise ConvexSolverError("; ".join(errors))

    # ------------------------------------------------------------------
    def _interior_start(self) -> np.ndarray:
        """Strictly feasible point, phase-I LP result cached across solves.

        A previously computed phase-I point is reused whenever it is
        still comfortably interior for the current right-hand side —
        per-slot ``b`` updates between chained subproblem solves
        usually leave it valid, so the LP runs once per constraint
        structure instead of once per cold start.
        """
        cached = self._phase1_cache
        if cached is not None and self.residual(cached) < -1e-7:
            return cached.copy()
        v = self._phase1_lp()
        self._phase1_cache = v
        return v.copy()

    def _phase1_lp(self) -> np.ndarray:
        """Strictly feasible point via a margin-maximizing LP (phase I)."""
        from scipy.optimize import linprog

        n = self.objective.n
        m = self.A.shape[0]
        # Variables [v, delta]: maximize delta s.t. Av + delta <= b,
        # lb + delta <= v <= ub - delta (only where bounds are finite).
        cols = []
        rhs = []
        if m:
            cols.append(sp.hstack([self.A, sp.csr_matrix(np.ones((m, 1)))]))
            rhs.append(self.b)
        fin_lb = np.flatnonzero(np.isfinite(self.lb))
        if fin_lb.size:
            sel = sp.csr_matrix(
                (-np.ones(fin_lb.size), (np.arange(fin_lb.size), fin_lb)),
                shape=(fin_lb.size, n),
            )
            cols.append(sp.hstack([sel, sp.csr_matrix(np.ones((fin_lb.size, 1)))]))
            rhs.append(-self.lb[fin_lb])
        fin_ub = np.flatnonzero(np.isfinite(self.ub))
        if fin_ub.size:
            sel = sp.csr_matrix(
                (np.ones(fin_ub.size), (np.arange(fin_ub.size), fin_ub)),
                shape=(fin_ub.size, n),
            )
            cols.append(sp.hstack([sel, sp.csr_matrix(np.ones((fin_ub.size, 1)))]))
            rhs.append(self.ub[fin_ub])
        A_ub = sp.vstack(cols, format="csr")
        b_ub = np.concatenate(rhs)
        c = np.zeros(n + 1)
        c[-1] = -1.0
        # Cap delta so the LP is bounded even for unbounded feasible sets.
        bounds = [(None, None)] * n + [(0.0, 1e6)]
        res = linprog(c, A_ub=A_ub, b_ub=b_ub, bounds=bounds, method="highs")
        if not res.success or res.x is None or res.x[-1] <= 0:
            raise ConvexSolverError("phase-I failed to find a strictly interior point")
        return np.asarray(res.x[:n], dtype=float)

    def _solve_trust_constr(
        self,
        v0: "np.ndarray | None",
        options: SolverOptions,
        info: "SolveInfo | None" = None,
    ) -> np.ndarray:
        obj = self.objective
        n = obj.n
        if v0 is None or self.residual(v0) > 0:
            v0 = (
                self._interior_start()
                if self.A.shape[0]
                else np.clip(np.zeros(n), self.lb, self.ub)
            )
        constraints = []
        if self.A.shape[0]:
            constraints.append(LinearConstraint(self.A, -np.inf, self.b))
        res = minimize(
            obj.value,
            v0,
            jac=obj.grad,
            hess=lambda v: sp.diags(obj.hess_diag(v)),
            bounds=Bounds(self.lb, self.ub),
            constraints=constraints,
            method="trust-constr",
            options={
                "gtol": options.trust_constr_tol,
                "xtol": options.trust_constr_tol,
                "maxiter": options.trust_constr_maxiter,
            },
        )
        v = np.asarray(res.x, dtype=float)
        if info is not None:
            info.newton_iters += int(getattr(res, "niter", 0) or 0)
        # trust-constr can end with tiny constraint violations; project
        # box bounds exactly and accept small general-constraint slack.
        v = np.clip(v, self.lb, self.ub)
        viol = self.residual(v)
        if viol > 1e-6:
            raise ConvexSolverError(
                f"trust-constr returned infeasible point (violation {viol:.2e})"
            )
        if not res.success and res.status not in (1, 2, 3):
            raise ConvexSolverError(f"trust-constr failed: {res.message}")
        return v
