"""Pluggable solver backends for the per-slot subproblems.

See :mod:`repro.solvers.backends.base` for the protocol and
``docs/SOLVER_BACKENDS.md`` for the design notes.
"""

from __future__ import annotations

from repro.solvers.backends.base import (
    SolverBackend,
    available_backends,
    get_backend,
    register_backend,
)
from repro.solvers.backends.batched import BatchedNewtonBackend
from repro.solvers.backends.sequential import SequentialBackend

register_backend("sequential", SequentialBackend)
register_backend("batched", BatchedNewtonBackend)

__all__ = [
    "SolverBackend",
    "SequentialBackend",
    "BatchedNewtonBackend",
    "available_backends",
    "get_backend",
    "register_backend",
]
