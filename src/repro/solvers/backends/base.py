"""The solver-backend protocol and registry.

A *backend* owns how the per-slot regularized subproblems are solved.
The reduced program (see :mod:`repro.core.subproblem`) couples the
per-cloud subproblems only weakly — through the shared workload-cover
and hedging rows — so different execution strategies are possible:
solve the coupled program as one barrier solve (the reference
``sequential`` backend), or partition it into its independent
edge-cloud blocks and solve them batched (``batched``).

Protocol
--------
``compile(subproblem) -> handle``
    One-time structural analysis of a
    :class:`~repro.core.subproblem.RegularizedSubproblem` — the
    container of every per-cloud subproblem in reduced form.  The
    returned handle holds whatever the backend precomputed (block
    partition, stacked index arrays, workspace caches) and is passed
    back to every ``solve``.

``solve(handle, workload, tier2_price, link_price, previous, warm, probe)``
    Solve one slot.  Returns ``(allocation, reduced_v)`` exactly like
    :meth:`RegularizedSubproblem.solve_reduced`: the edge-space
    decision plus the reduced solution vector (the next slot's
    warm-start seed, and the payload of checkpointed warm state — every
    backend uses the same full reduced vector so checkpoints written
    under one backend describe the same state space).

Backends must be deterministic: same inputs, same outputs, bitwise —
the serve runtime's checkpoint/resume equivalence depends on it.

Registration is by name (:func:`register_backend` /
:func:`get_backend`); :class:`~repro.core.subproblem.SubproblemConfig`
selects one with its ``backend`` field and the CLI exposes it as
``--backend``.  See ``docs/SOLVER_BACKENDS.md``.
"""

from __future__ import annotations

from typing import Any, Callable, Protocol, runtime_checkable

import numpy as np


@runtime_checkable
class SolverBackend(Protocol):
    """Strategy for solving the per-slot subproblems of one structure."""

    name: str

    def compile(self, subproblem: Any) -> Any:
        """Precompute per-structure state; returns the backend handle."""
        ...

    def solve(
        self,
        handle: Any,
        workload: np.ndarray,
        tier2_price: np.ndarray,
        link_price: np.ndarray,
        previous: Any,
        warm: "np.ndarray | None" = None,
        probe: Any = None,
    ) -> "tuple[Any, np.ndarray]":
        """Solve one slot; returns ``(Allocation, reduced solution v)``."""
        ...


_REGISTRY: "dict[str, Callable[[], SolverBackend]]" = {}


def register_backend(name: str, factory: "Callable[[], SolverBackend]") -> None:
    """Register a backend factory under ``name`` (last wins)."""
    _REGISTRY[name] = factory


def available_backends() -> "tuple[str, ...]":
    """Registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def get_backend(name: str) -> SolverBackend:
    """Instantiate the backend registered under ``name``.

    Raises a :class:`ValueError` naming the known backends on an
    unknown name, so a typo in ``--backend`` or a config file fails
    with an actionable message instead of deep in the solve path.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(available_backends()) or "none registered"
        raise ValueError(
            f"unknown solver backend {name!r}; available: {known}"
        ) from None
    return factory()
