"""The reference backend: one coupled barrier solve per slot.

This is the historical solve path, moved behind the
:class:`~repro.solvers.backends.base.SolverBackend` protocol unchanged:
``solve`` delegates to the subproblem's own coupled solve
(:meth:`RegularizedSubproblem._solve_reduced_coupled`), so results are
bitwise identical to the pre-backend-layer code and every other backend
is validated against it.
"""

from __future__ import annotations

from typing import Any

import numpy as np


class SequentialBackend:
    """Solve each slot as one coupled convex program (the default)."""

    name = "sequential"

    def compile(self, subproblem: Any) -> Any:
        """The subproblem *is* the handle: its per-keep-pattern program
        cache (``reuse_structure``) already holds all compiled state."""
        return subproblem

    def solve(
        self,
        handle: Any,
        workload: np.ndarray,
        tier2_price: np.ndarray,
        link_price: np.ndarray,
        previous: Any,
        warm: "np.ndarray | None" = None,
        probe: Any = None,
    ) -> "tuple[Any, np.ndarray]":
        return handle._solve_reduced_coupled(
            workload, tier2_price, link_price, previous, warm, probe=probe
        )
