"""Batched block-diagonal Newton backend for the per-slot subproblems.

The reduced program P2(t) couples its variables through five row
families (see :mod:`repro.core.subproblem`).  Four of them —
``s <= y``, workload cover, ``sum s <= X`` and the intra-tier-1 hedge
(3e) — only ever connect clouds inside one connected component of the
bipartite (tier-2, tier-1) SLA graph.  The single cross-component
family is the tier-2 hedge (3d), and a per-component optimum satisfies
it automatically whenever it is feasible at all: cover forces
``sum_k X_k >= Lambda`` while the capacity cap bounds ``X_i <= C_i``,
so ``sum_{k != i} X_k >= Lambda - C_i`` — exactly (3d)'s right-hand
side.  The backend therefore solves each component independently,
verifies (3d) post-hoc (cheap), and falls back to the coupled
sequential solve on the rare violation or structural surprise.

Two per-component execution paths:

* **Closed-form fast path** — a component in which every tier-1 cloud
  has exactly one SLA edge is a star around a single tier-2 cloud, and
  its optimum splits into independent single-resource problems whose
  solution is the paper's exponential-decay recursion
  (:func:`repro.core.single.single_online_decay`, eq. (6)):
  ``X = clip(max(demand, (prev + eps) * exp(-price/weight) - eps), 0, C)``
  and likewise for each link.  All such components are solved in one
  vectorized numpy pass — no Newton iterations at all.  At the paper's
  default SLA size ``k = 1`` the *entire network* is stars, which is
  where the headline trajectory speedup comes from.

* **Batched Newton** — remaining components are stacked by shape into
  dense ``(B, m, n)`` block-diagonal KKT groups and driven down one
  shared log-barrier path: one batched Cholesky-free ``solve`` per
  Newton step, one shared feasible-stepsize + Armijo backtracking pass
  with per-block step lengths and convergence masks.

Structural analysis happens once in :meth:`BatchedNewtonBackend.compile`;
per-slot variation (the hedging keep-pattern) reuses cached stacked
structures the same way ``RegularizedSubproblem.reuse_structure``
caches compiled coupled programs.

Equivalence contract: tier-2 totals ``X``, link allocations ``y`` and
hence every cost term agree with the sequential backend to solver
tolerance (they are the unique optimum of a strictly convex
objective).  The cover split ``s`` is *not* unique — the objective has
no ``s`` term, so the sequential barrier returns the analytic center
of the optimal face while this backend returns the minimal cover;
neither the trajectory cost nor any later decision depends on the
difference (the next slot's regularizers see only ``X`` and ``y``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.obs import tracing as obs_tracing

#: Same line-search constants as the sequential barrier.
_ARMIJO_ALPHA = 0.1
_ARMIJO_BETA = 0.5
_MAX_BOUNDARY_FRACTION = 0.99

#: Blocks-per-batch histogram buckets (counts, not latencies).
_BATCH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


class _BatchSolveError(RuntimeError):
    """Batched Newton could not certify a block; caller falls back."""


# ----------------------------------------------------------------------
# Compiled structure
# ----------------------------------------------------------------------
@dataclass
class _Block:
    """Static index data of one Newton (non-star) component."""

    ti: np.ndarray  # global tier-2 indices in the component
    tj: np.ndarray  # global tier-1 indices
    te: np.ndarray  # global edge indices
    e_i_loc: np.ndarray  # edge -> local tier-2 index
    e_j_loc: np.ndarray  # edge -> local tier-1 index

    @property
    def n_vars(self) -> int:
        return self.ti.size + 2 * self.te.size

    @property
    def shape_key(self) -> "tuple[int, int, int]":
        return (self.ti.size, self.tj.size, self.te.size)


class _BatchedGroup:
    """Same-shape Newton blocks stacked into one block-diagonal system.

    Variable layout per block: ``[X (nI,) | y (nE,) | s (nE,)]``.
    Row layout: ``[s<=y (nE) | cover (nJ) | s<=X (nI) | hedge-y (ky)]``.
    The constraint matrix, bounds and entropic structure are built once
    per hedging keep-pattern and cached; only the right-hand side,
    linear costs and regularizer anchors are rewritten per slot.
    """

    def __init__(
        self,
        blocks: "list[_Block]",
        keep_y: "np.ndarray | None",
        lb_full: np.ndarray,
        ub_full: np.ndarray,
        sl_X: slice,
        sl_y: slice,
        sl_s: slice,
        weight_tier2: np.ndarray,
        weight_link: np.ndarray,
        eps: float,
        eps2: float,
    ) -> None:
        self.blocks = blocks
        B = len(blocks)
        nI, nJ, nE = blocks[0].shape_key
        ky = 0
        if keep_y is not None:
            ky = int(np.count_nonzero(keep_y[blocks[0].te]))
        self.nI, self.nJ, self.nE, self.ky = nI, nJ, nE, ky
        n = nI + 2 * nE
        m = nE + nJ + nI + ky
        self.n, self.m = n, m
        self.q = nI + nE  # entropic variables: [X | y]

        self.A = np.zeros((B, m, n))
        self.lb = np.zeros((B, n))
        self.ub = np.empty((B, n))
        self.w = np.empty((B, self.q))
        self.eps = np.concatenate([np.full(nI, eps), np.full(nE, eps2)])
        # Per-slot buffers.
        self.b = np.zeros((B, m))
        self.lin = np.zeros((B, n))
        self.ref = np.empty((B, self.q))

        ub_X, ub_y, ub_s = ub_full[sl_X], ub_full[sl_y], ub_full[sl_s]
        r = np.arange(nE)
        for k, blk in enumerate(blocks):
            A = self.A[k]
            A[r, nI + r] = -1.0          # s - y <= 0  (s coefficient below)
            A[r, nI + nE + r] = 1.0
            A[nE + blk.e_j_loc, nI + nE + r] = -1.0       # cover
            A[nE + nJ + blk.e_i_loc, nI + nE + r] = 1.0   # sum s <= X
            A[nE + nJ + np.arange(nI), np.arange(nI)] = -1.0
            if ky:
                # hedge-y rows: for each active local edge e0, the row
                # selects the *other* edges of e0's tier-1 cloud.
                active = np.flatnonzero(keep_y[blk.te])
                for row, e0 in enumerate(active):
                    peers = np.flatnonzero(blk.e_j_loc == blk.e_j_loc[e0])
                    peers = peers[peers != e0]
                    A[nE + nJ + nI + row, nI + peers] = -1.0
            self.lb[k, :nI] = lb_full[sl_X][blk.ti]
            self.lb[k, nI : nI + nE] = lb_full[sl_y][blk.te]
            self.lb[k, nI + nE :] = lb_full[sl_s][blk.te]
            self.ub[k, :nI] = ub_X[blk.ti]
            self.ub[k, nI : nI + nE] = ub_y[blk.te]
            self.ub[k, nI + nE :] = ub_s[blk.te]
            self.w[k, :nI] = weight_tier2[blk.ti]
            self.w[k, nI:] = weight_link[blk.te]

        self.fin_ub = np.isfinite(self.ub)
        # Barrier constraint count per block: rows + finite bounds.
        self.m_total = float(m + n) + self.fin_ub[0].sum(dtype=float)
        self._active_y = (
            [np.flatnonzero(keep_y[blk.te]) for blk in blocks] if ky else None
        )

    def set_slot(
        self,
        lam: np.ndarray,
        tier2_price: np.ndarray,
        link_price: np.ndarray,
        X_prev: np.ndarray,
        y_prev: np.ndarray,
        rhs_y: "np.ndarray | None",
    ) -> None:
        """Rewrite the per-slot data in place (structure untouched)."""
        nI, nJ, nE = self.nI, self.nJ, self.nE
        for k, blk in enumerate(self.blocks):
            self.lin[k, :nI] = tier2_price[blk.ti]
            self.lin[k, nI : nI + nE] = link_price[blk.te]
            self.ref[k, :nI] = X_prev[blk.ti]
            self.ref[k, nI:] = y_prev[blk.te]
            self.b[k, nE : nE + nJ] = -lam[blk.tj]
            if self.ky:
                act = self._active_y[k]
                self.b[k, nE + nJ + nI :] = -rhs_y[blk.te][act]

    # ------------------------------------------------------------------
    # Batched objective / barrier kernels
    # ------------------------------------------------------------------
    def f_value(self, V: np.ndarray) -> np.ndarray:
        Vq = V[:, : self.q]
        u = Vq + self.eps
        lr = np.log1p((Vq - self.ref) / (self.ref + self.eps))
        return (self.lin * V).sum(axis=1) + (self.w * (u * lr - Vq)).sum(axis=1)

    def f_grad_hess(self, V: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
        Vq = V[:, : self.q]
        u = Vq + self.eps
        lr = np.log1p((Vq - self.ref) / (self.ref + self.eps))
        g = self.lin.copy()
        g[:, : self.q] += self.w * lr
        h = np.zeros_like(V)
        h[:, : self.q] += self.w / u
        return g, h

    def slacks(self, V: np.ndarray) -> np.ndarray:
        return self.b - np.einsum("bmn,bn->bm", self.A, V)

    def phi(self, V: np.ndarray, tau: float) -> np.ndarray:
        """Barrier potential per block; +inf outside the interior."""
        with np.errstate(divide="ignore", invalid="ignore"):
            slack = self.slacks(V)
            lo = V - self.lb
            hi = np.where(self.fin_ub, self.ub - V, 1.0)
            bad = (
                (slack <= 0).any(axis=1)
                | (lo <= 0).any(axis=1)
                | (hi <= 0).any(axis=1)
            )
            out = (
                tau * self.f_value(V)
                - np.log(np.maximum(slack, 1e-300)).sum(axis=1)
                - np.log(np.maximum(lo, 1e-300)).sum(axis=1)
                - np.where(self.fin_ub, np.log(np.maximum(hi, 1e-300)), 0.0).sum(
                    axis=1
                )
            )
        out[bad] = np.inf
        return out

    def interior(self, V: np.ndarray, margin: float = 1e-12) -> np.ndarray:
        """Strict-interiority mask per block."""
        ok = (self.slacks(V) > margin).all(axis=1)
        ok &= (V - self.lb > 0).all(axis=1)
        ok &= np.where(self.fin_ub, self.ub - V > 0, True).all(axis=1)
        return ok


def _batched_barrier(
    grp: _BatchedGroup, V0: np.ndarray, options
) -> "tuple[np.ndarray, int]":
    """Shared path-following barrier over all blocks of a group.

    One tau schedule drives every block; a block drops out of the
    working set as soon as its own duality-gap bound ``m_total / tau``
    clears the tolerance.  Returns ``(V, total Newton iterations)``;
    raises :class:`_BatchSolveError` if any block stalls with a large
    remaining gap (the slot then falls back to the coupled solve).
    """
    B = V0.shape[0]
    V = V0.copy()
    tau = options.barrier_t0
    done = np.zeros(B, dtype=bool)
    stalled = np.zeros(B, dtype=bool)
    iters = 0

    for _outer in range(200):
        work = ~done
        center_tol = 1e-9 * (1.0 + tau * 1e-4)
        for _inner in range(options.max_newton):
            idx = np.flatnonzero(work & ~stalled)
            if idx.size == 0:
                break
            Vw = V[idx]
            slack = grp.b[idx] - np.einsum("bmn,bn->bm", grp.A[idx], Vw)
            g_f, h_f = grp.f_grad_hess(V)
            d1 = 1.0 / slack
            lo = Vw - grp.lb[idx]
            with np.errstate(divide="ignore"):
                hi_inv = np.where(
                    grp.fin_ub[idx], 1.0 / (grp.ub[idx] - Vw), 0.0
                )
            g = (
                tau * g_f[idx]
                + np.einsum("bmn,bm->bn", grp.A[idx], d1)
                - 1.0 / lo
                + hi_inv
            )
            diag = tau * h_f[idx] + 1.0 / (lo * lo) + hi_inv * hi_inv
            M = grp.A[idx] * d1[:, :, None]
            H = np.matmul(M.transpose(0, 2, 1), M)
            H[:, np.arange(grp.n), np.arange(grp.n)] += diag
            dv = np.linalg.solve(H, -g[..., None])[..., 0]
            iters += idx.size
            dec_sq = -(g * dv).sum(axis=1)
            centered = dec_sq / 2.0 <= center_tol
            if centered.all():
                break
            sel = np.flatnonzero(~centered)
            # Largest feasible step per block, then shared Armijo pass.
            step = np.ones(sel.size)
            Adv = np.einsum("bmn,bn->bm", grp.A[idx][sel], dv[sel])
            with np.errstate(divide="ignore", invalid="ignore"):
                ratio = np.where(Adv > 0, slack[sel] / Adv, np.inf)
                step = np.minimum(step, ratio.min(axis=1) * _MAX_BOUNDARY_FRACTION)
                dn = dv[sel]
                lo_ratio = np.where(dn < 0, -(Vw[sel] - grp.lb[idx][sel]) / dn, np.inf)
                step = np.minimum(step, lo_ratio.min(axis=1) * _MAX_BOUNDARY_FRACTION)
                hi_gap = np.where(grp.fin_ub[idx][sel], grp.ub[idx][sel] - Vw[sel], np.inf)
                hi_ratio = np.where(dn > 0, hi_gap / dn, np.inf)
                step = np.minimum(step, hi_ratio.min(axis=1) * _MAX_BOUNDARY_FRACTION)
            gidx = idx[sel]
            phi0 = grp.phi(V, tau)[gidx]
            need = np.ones(sel.size, dtype=bool)
            trial = V[gidx].copy()
            for _bt in range(60):
                trial[need] = V[gidx[need]] + step[need, None] * dv[sel[need]]
                Vt = V.copy()
                Vt[gidx] = trial
                phi1 = grp.phi(Vt, tau)[gidx]
                ok = need & (phi1 <= phi0 - _ARMIJO_ALPHA * step * dec_sq[sel])
                V[gidx[ok]] = trial[ok]
                need &= ~ok
                if not need.any():
                    break
                step[need] *= _ARMIJO_BETA
                exhausted = need & (step <= 1e-14)
                if exhausted.any():
                    stalled[gidx[exhausted]] = True
                    need &= ~exhausted
                    if not need.any():
                        break
            else:  # pragma: no cover - 60 halvings always terminates
                stalled[gidx[need]] = True
        else:
            stalled[work & ~stalled] = True

        gap = grp.m_total / tau
        scale = 1.0 + np.abs(grp.f_value(V))
        done |= work & (gap <= options.tol * scale)
        hard = work & stalled & ~done
        if hard.any():
            if bool((gap <= 1e3 * options.tol * scale[hard]).all()):
                done[hard] = True  # late-path stall, gap already tiny
            else:
                raise _BatchSolveError(
                    f"batched Newton stalled at tau={tau:.2e} (gap {gap:.2e})"
                )
        if done.all():
            return V, iters
        stalled[:] = False
        tau *= options.barrier_mu
    raise _BatchSolveError("batched barrier exceeded the outer-iteration budget")


# ----------------------------------------------------------------------
# Backend
# ----------------------------------------------------------------------
@dataclass
class _Handle:
    """Per-structure state the batched backend precomputes."""

    sub: Any
    fast_i: np.ndarray  # (I,) tier-2 clouds in star components
    fast_e: np.ndarray  # (E,) edges in star components
    blocks: "list[_Block]" = field(default_factory=list)
    groups: "dict[bytes, list[_BatchedGroup]]" = field(default_factory=dict)
    # Static degeneracy flags: a zero regularizer weight makes the fast
    # closed form depend on the slot's price being nonzero.
    wX_zero: "np.ndarray | None" = None
    wy_zero: "np.ndarray | None" = None


class BatchedNewtonBackend:
    """Component-decomposed solves: closed forms + batched Newton."""

    name = "batched"

    # ------------------------------------------------------------------
    def compile(self, subproblem: Any) -> _Handle:
        """Partition the SLA graph and precompute block index data."""
        net = subproblem.network
        n_i, n_j = net.n_tier2, net.n_tier1

        parent = list(range(n_i + n_j))

        def find(a: int) -> int:
            while parent[a] != a:
                parent[a] = parent[parent[a]]
                a = parent[a]
            return a

        for e in range(net.n_edges):
            ra, rb = find(int(net.edge_i[e])), find(n_i + int(net.edge_j[e]))
            if ra != rb:
                parent[ra] = rb

        deg_j = np.bincount(net.edge_j, minlength=n_j)
        roots_i = np.array([find(i) for i in range(n_i)])
        roots_j = np.array([find(n_i + j) for j in range(n_j)])
        roots_e = roots_i[net.edge_i]

        # A component is a closed-form star iff every tier-1 member has
        # exactly one SLA edge; components are enumerated by root.
        comp_has_multi = np.zeros(n_i + n_j, dtype=bool)
        np.logical_or.at(comp_has_multi, roots_j, deg_j > 1)
        fast_root = ~comp_has_multi
        handle = _Handle(
            sub=subproblem,
            fast_i=fast_root[roots_i],
            fast_e=fast_root[roots_e],
            wX_zero=subproblem.weight_tier2 == 0,
            wy_zero=subproblem.weight_link == 0,
        )
        for root in np.unique(np.concatenate([roots_i, roots_j])):
            if fast_root[root]:
                continue
            ti = np.flatnonzero(roots_i == root)
            tj = np.flatnonzero(roots_j == root)
            te = np.flatnonzero(roots_e == root)
            loc_i = np.zeros(n_i, dtype=np.intp)
            loc_i[ti] = np.arange(ti.size)
            loc_j = np.zeros(n_j, dtype=np.intp)
            loc_j[tj] = np.arange(tj.size)
            handle.blocks.append(
                _Block(
                    ti=ti,
                    tj=tj,
                    te=te,
                    e_i_loc=loc_i[net.edge_i[te]],
                    e_j_loc=loc_j[net.edge_j[te]],
                )
            )
        return handle

    # ------------------------------------------------------------------
    def _groups_for(
        self, handle: _Handle, keep_y: "np.ndarray | None"
    ) -> "list[_BatchedGroup]":
        """Stacked groups for one hedging keep-pattern (cached)."""
        sub = handle.sub
        key = keep_y.tobytes() if keep_y is not None else b""
        cached = handle.groups.get(key) if sub.config.reuse_structure else None
        if cached is not None:
            return cached
        by_shape: "dict[tuple, list[_Block]]" = {}
        for blk in handle.blocks:
            ky = 0 if keep_y is None else int(np.count_nonzero(keep_y[blk.te]))
            by_shape.setdefault(blk.shape_key + (ky,), []).append(blk)
        lb, ub = sub._bounds
        groups = [
            _BatchedGroup(
                blocks,
                keep_y,
                lb,
                ub,
                sub.sl_X,
                sub.sl_y,
                sub.sl_s,
                sub.weight_tier2,
                sub.weight_link,
                sub.config.epsilon,
                sub.config.eps2,
            )
            for blocks in by_shape.values()
        ]
        if sub.config.reuse_structure:
            handle.groups[key] = groups
        return groups

    # ------------------------------------------------------------------
    def solve(
        self,
        handle: _Handle,
        workload: np.ndarray,
        tier2_price: np.ndarray,
        link_price: np.ndarray,
        previous: Any,
        warm: "np.ndarray | None" = None,
        probe: Any = None,
    ) -> "tuple[Any, np.ndarray]":
        sub = handle.sub
        net = sub.network
        cfg = sub.config
        lam = np.asarray(workload, dtype=float)
        lam_e = lam[net.edge_j]
        X_prev = previous.tier2_totals(net)
        y_prev = np.asarray(previous.y, dtype=float)
        lb, ub = sub._bounds
        ub_X, ub_y = ub[sub.sl_X], ub[sub.sl_y]

        rhs_x = rhs_y = keep_x = keep_y = None
        if cfg.hedging:
            total = float(lam.sum())
            rhs_x = np.maximum(total - net.tier2_capacity, 0.0)
            keep_x = rhs_x > 0
            rhs_y = np.maximum(lam_e - net.edge_capacity, 0.0)
            keep_y = rhs_y > 0

        fast_i, fast_e = handle.fast_i, handle.fast_e

        def bail(reason: str):
            return self._fallback(
                sub, workload, tier2_price, link_price, previous, warm, probe,
                reason,
            )

        # Structural surprises route the whole slot through the coupled
        # solve so behaviour (including infeasibility errors) matches
        # the sequential backend exactly.
        if keep_y is not None and bool(np.any(keep_y & fast_e)):
            # An active (3e) row on a degree-1 edge has an empty
            # left-hand side: the slot is infeasible (or degenerate).
            return bail("hedge_y_on_star")
        if bool(np.any((lam_e >= ub_y) & fast_e)):
            return bail("star_link_at_capacity")
        if bool(np.any(handle.wy_zero & (link_price == 0) & fast_e)):
            return bail("degenerate_link_objective")
        if bool(np.any(handle.wX_zero & (tier2_price == 0) & fast_i)):
            return bail("degenerate_tier2_objective")
        if len(handle.blocks) == 1 and not bool(fast_e.any()):
            # The SLA graph is one non-star component: there is nothing
            # to decompose, and the coupled solve's sparse fused kernels
            # beat a dense single-block Newton.  Densely-connected
            # structures (k >= 2 at paper sizes) land here.
            return bail("single_component")

        span = obs_tracing.span("subproblem.solve")
        with span:
            v = np.empty(sub.n_vars)
            newton_iters = 0
            warm_attempted = False
            warm_used = False

            # ---------------- closed-form star components -------------
            n_fast = int(np.count_nonzero(fast_e))
            if n_fast:
                with np.errstate(divide="ignore"):
                    fy = np.exp(
                        -np.divide(
                            link_price,
                            sub.weight_link,
                            out=np.full(net.n_edges, np.inf),
                            where=~handle.wy_zero,
                        )
                    )
                    fX = np.exp(
                        -np.divide(
                            tier2_price,
                            sub.weight_tier2,
                            out=np.full(net.n_tier2, np.inf),
                            where=~handle.wX_zero,
                        )
                    )
                ybar = (y_prev + cfg.eps2) * fy - cfg.eps2
                y_fast = np.minimum(np.maximum(lam_e, ybar), ub_y)
                s_fast = np.where(fast_e, lam_e, 0.0)
                D = net.aggregate_tier2(s_fast)
                if bool(np.any((D >= ub_X) & fast_i)):
                    return bail("star_cloud_at_capacity")
                xbar = (X_prev + cfg.epsilon) * fX - cfg.epsilon
                X_fast = np.minimum(np.maximum(D, xbar), ub_X)
                v[sub.sl_X] = np.where(fast_i, X_fast, 0.0)
                v[sub.sl_y] = np.where(fast_e, y_fast, 0.0)
                v[sub.sl_s] = s_fast

            # ---------------- batched Newton components ---------------
            batch_sizes: "list[int]" = []
            if handle.blocks:
                groups = self._groups_for(handle, keep_y)
                # Interior candidate, same construction as the coupled
                # path's warm-start heuristic, sliced per block.
                link_sum = net.aggregate_tier1(net.edge_capacity)
                share = net.edge_capacity / np.maximum(
                    link_sum[net.edge_j], 1e-300
                )
                floor = 1e-9 * (1.0 + net.edge_capacity)
                s_c = np.maximum(lam_e * share * 1.02, floor)
                y_c = 0.5 * (s_c + net.edge_capacity)
                X_c = 0.5 * (net.aggregate_tier2(s_c) + net.tier2_capacity)

                options = cfg.solver
                warm_attempted = warm is not None and len(handle.blocks) > 0
                all_warm = warm_attempted
                solved: "list[tuple[_BatchedGroup, np.ndarray]]" = []
                for grp in groups:
                    grp.set_slot(
                        lam, tier2_price, link_price, X_prev, y_prev, rhs_y
                    )
                    nI, nE = grp.nI, grp.nE
                    V0 = np.empty((len(grp.blocks), grp.n))
                    for k, blk in enumerate(grp.blocks):
                        V0[k, :nI] = X_c[blk.ti]
                        V0[k, nI : nI + nE] = y_c[blk.te]
                        V0[k, nI + nE :] = s_c[blk.te]
                    if not bool(grp.interior(V0).all()):
                        return bail("no_interior_candidate")
                    if warm is not None:
                        W = np.empty_like(V0)
                        for k, blk in enumerate(grp.blocks):
                            W[k, :nI] = warm[sub.sl_X][blk.ti]
                            W[k, nI : nI + nE] = warm[sub.sl_y][blk.te]
                            W[k, nI + nE :] = warm[sub.sl_s][blk.te]
                        blend = 0.9 * W + 0.1 * V0
                        ok = grp.interior(blend)
                        V0[ok] = blend[ok]
                        warm_used |= bool(ok.any())
                        all_warm &= bool(ok.all())
                    else:
                        all_warm = False
                    solved.append((grp, V0))
                if all_warm and options.backend == "barrier":
                    options = replace(
                        options, barrier_t0=max(options.barrier_t0, 1e3)
                    )
                try:
                    for grp, V0 in solved:
                        V, iters = _batched_barrier(grp, V0, options)
                        newton_iters += iters
                        batch_sizes.append(len(grp.blocks))
                        nI, nE = grp.nI, grp.nE
                        for k, blk in enumerate(grp.blocks):
                            v[sub.sl_X][blk.ti] = V[k, :nI]
                            v[sub.sl_y][blk.te] = V[k, nI : nI + nE]
                            v[sub.sl_s][blk.te] = V[k, nI + nE :]
                except _BatchSolveError:
                    return bail("batched_newton_stalled")

            # ---------------- post-hoc tier-2 hedge check --------------
            if keep_x is not None and bool(np.any(keep_x)):
                X = v[sub.sl_X]
                others = float(X.sum()) - X
                slack_tol = 1e-9 * (1.0 + rhs_x)
                if not bool(np.all(others[keep_x] >= rhs_x[keep_x] - slack_tol[keep_x])):
                    return bail("hedge_x_violation")

            span.set(
                backend=self.name,
                warm_attempted=warm_attempted,
                warm_used=warm_used,
                fallback=False,
                newton_iters=newton_iters,
            )

        if probe is not None:
            probe.record_solve(
                backend=self.name,
                newton_iters=newton_iters,
                warm_attempted=warm_attempted,
                warm_used=warm_used,
                fallback=False,
            )
        reg = obs_metrics.active()
        if reg is not None:
            reg.counter(
                "backend_slots_total",
                help="slots solved, by solver backend",
                backend=self.name,
            ).inc()
            if n_fast:
                reg.counter(
                    "backend_fast_path_hits_total",
                    help="closed-form star components solved without Newton",
                    backend=self.name,
                ).inc(n_fast)
            if newton_iters:
                reg.counter(
                    "backend_fused_newton_iters_total",
                    help="Newton iterations inside batched block solves",
                    backend=self.name,
                ).inc(newton_iters)
            for size in batch_sizes:
                reg.histogram(
                    "backend_batch_size",
                    help="blocks stacked per batched Newton solve",
                    buckets=_BATCH_BUCKETS,
                    backend=self.name,
                ).observe(size)
        return sub.split(v, lam), v

    # ------------------------------------------------------------------
    def _fallback(
        self,
        sub: Any,
        workload: np.ndarray,
        tier2_price: np.ndarray,
        link_price: np.ndarray,
        previous: Any,
        warm: "np.ndarray | None",
        probe: Any,
        reason: str,
    ) -> "tuple[Any, np.ndarray]":
        """Route the slot through the coupled sequential solve."""
        reg = obs_metrics.active()
        if reg is not None:
            reg.counter(
                "backend_sequential_fallbacks_total",
                help="slots the batched backend routed to the coupled solve",
                backend=self.name,
                reason=reason,
            ).inc()
        return sub._solve_reduced_coupled(
            workload, tier2_price, link_price, previous, warm, probe=probe
        )
