"""A thin sparse LP modeling layer over ``scipy.optimize.linprog``.

The library builds many structurally similar LPs (offline optimum,
one-shot slices, windowed control problems, LCP prefix problems).  This
module provides named variable blocks and block-wise sparse constraint
assembly so those formulations stay readable while the final matrices
are assembled once, in sparse form, with no Python-level loops over
nonzeros.

Example
-------
>>> lp = LinearProgram()
>>> x = lp.add_block("x", 3, lb=0.0, cost=[1.0, 2.0, 3.0])
>>> import numpy as np, scipy.sparse as sp
>>> lp.add_rows(">=", np.array([1.0]), x=sp.csr_matrix(np.ones((1, 3))))
>>> sol = lp.solve()
>>> float(sol.objective)
1.0
>>> sol["x"]
array([1., 0., 0.])
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
from scipy.optimize import linprog


class LPError(RuntimeError):
    """Raised when HiGHS reports failure (infeasible/unbounded/numerical)."""


@dataclass(frozen=True)
class _Block:
    name: str
    offset: int
    size: int


@dataclass
class LPSolution:
    """Solution of a :class:`LinearProgram`.

    Index with a block name to get that block's values:
    ``sol["x"]`` returns the ``(size,)`` array for block ``"x"``.

    ``row_duals`` holds the multipliers of each :meth:`add_rows` group
    in call order, sign-normalized so that every dual is the marginal
    objective increase per unit of right-hand side *tightening*
    (non-negative for inequality rows).  ``bound_duals`` are the
    reduced costs of the variable bounds.
    """

    objective: float
    values: np.ndarray
    blocks: dict[str, _Block]
    status: str
    row_duals: "list[np.ndarray]"
    bound_duals: np.ndarray

    def __getitem__(self, name: str) -> np.ndarray:
        blk = self.blocks[name]
        return self.values[blk.offset : blk.offset + blk.size]

    def reduced_costs(self, name: str) -> np.ndarray:
        """Bound multipliers (reduced costs) of a variable block."""
        blk = self.blocks[name]
        return self.bound_duals[blk.offset : blk.offset + blk.size]


class LinearProgram:
    """Incrementally-built sparse LP ``min c.v  s.t.  A_ub v <= b_ub, A_eq v = b_eq, lb <= v <= ub``."""

    def __init__(self) -> None:
        self._blocks: dict[str, _Block] = {}
        self._n_vars = 0
        self._cost_parts: list[tuple[_Block, np.ndarray]] = []
        self._lb_parts: list[np.ndarray] = []
        self._ub_parts: list[np.ndarray] = []
        # Each row group: (sense, rhs, {block name: sparse (m, block.size)})
        self._row_groups: list[tuple[str, np.ndarray, dict[str, sp.spmatrix]]] = []

    # ------------------------------------------------------------------
    # Variables
    # ------------------------------------------------------------------
    def add_block(
        self,
        name: str,
        size: int,
        lb: "float | np.ndarray" = 0.0,
        ub: "float | np.ndarray" = np.inf,
        cost: "float | np.ndarray" = 0.0,
    ) -> str:
        """Declare ``size`` new variables under ``name``; returns the name."""
        if name in self._blocks:
            raise ValueError(f"duplicate block name {name!r}")
        if size <= 0:
            raise ValueError(f"block {name!r}: size must be positive")
        blk = _Block(name, self._n_vars, size)
        self._blocks[name] = blk
        self._n_vars += size
        self._cost_parts.append((blk, np.broadcast_to(np.asarray(cost, float), (size,)).copy()))
        lb_arr = np.broadcast_to(np.asarray(lb, float), (size,)).copy()
        ub_arr = np.broadcast_to(np.asarray(ub, float), (size,)).copy()
        if np.any(lb_arr > ub_arr):
            raise ValueError(f"block {name!r}: lb > ub")
        self._lb_parts.append(lb_arr)
        self._ub_parts.append(ub_arr)
        return name

    def set_cost(self, name: str, cost: "float | np.ndarray") -> None:
        """Replace the objective coefficients of an existing block."""
        blk = self._blocks[name]
        for k, (b, _) in enumerate(self._cost_parts):
            if b.name == name:
                self._cost_parts[k] = (
                    blk,
                    np.broadcast_to(np.asarray(cost, float), (blk.size,)).copy(),
                )
                return
        raise KeyError(name)

    @property
    def n_vars(self) -> int:
        """Total number of declared variables."""
        return self._n_vars

    def block_size(self, name: str) -> int:
        """Number of variables in a named block."""
        return self._blocks[name].size

    # ------------------------------------------------------------------
    # Constraints
    # ------------------------------------------------------------------
    def add_rows(self, sense: str, rhs: np.ndarray, **coeffs: sp.spmatrix) -> None:
        """Add a group of constraint rows.

        Parameters
        ----------
        sense:
            One of ``"<="``, ``">="``, ``"=="``.
        rhs:
            Right-hand side, shape ``(m,)``.
        **coeffs:
            For each participating block name, an ``(m, block.size)``
            sparse (or dense) coefficient matrix.  Blocks not mentioned
            have zero coefficients.
        """
        if sense not in ("<=", ">=", "=="):
            raise ValueError(f"unknown sense {sense!r}")
        rhs = np.atleast_1d(np.asarray(rhs, dtype=float))
        m = rhs.shape[0]
        mats: dict[str, sp.spmatrix] = {}
        for name, mat in coeffs.items():
            if name not in self._blocks:
                raise KeyError(f"unknown block {name!r}")
            smat = sp.csr_matrix(mat)
            if smat.shape != (m, self._blocks[name].size):
                raise ValueError(
                    f"coefficients for {name!r} have shape {smat.shape}, "
                    f"expected {(m, self._blocks[name].size)}"
                )
            mats[name] = smat
        if not mats:
            raise ValueError("constraint rows reference no blocks")
        self._row_groups.append((sense, rhs, mats))

    # ------------------------------------------------------------------
    # Assembly + solve
    # ------------------------------------------------------------------
    def _assemble_group(
        self, mats: dict[str, sp.spmatrix], m: int
    ) -> sp.csr_matrix:
        parts = []
        for name, blk in self._blocks.items():
            parts.append(mats.get(name, sp.csr_matrix((m, blk.size))))
        return sp.hstack(parts, format="csr")

    def build(self) -> tuple[np.ndarray, sp.csr_matrix | None, np.ndarray | None,
                             sp.csr_matrix | None, np.ndarray | None, list]:
        """Assemble ``(c, A_ub, b_ub, A_eq, b_eq, bounds)`` for linprog."""
        c = np.zeros(self._n_vars)
        for blk, cost in self._cost_parts:
            c[blk.offset : blk.offset + blk.size] = cost
        lb = np.concatenate(self._lb_parts) if self._lb_parts else np.zeros(0)
        ub = np.concatenate(self._ub_parts) if self._ub_parts else np.zeros(0)
        bounds = list(zip(lb, np.where(np.isinf(ub), None, ub)))

        ub_rows, ub_rhs, eq_rows, eq_rhs = [], [], [], []
        for sense, rhs, mats in self._row_groups:
            A = self._assemble_group(mats, rhs.shape[0])
            if sense == "<=":
                ub_rows.append(A)
                ub_rhs.append(rhs)
            elif sense == ">=":
                ub_rows.append(-A)
                ub_rhs.append(-rhs)
            else:
                eq_rows.append(A)
                eq_rhs.append(rhs)
        A_ub = sp.vstack(ub_rows, format="csr") if ub_rows else None
        b_ub = np.concatenate(ub_rhs) if ub_rhs else None
        A_eq = sp.vstack(eq_rows, format="csr") if eq_rows else None
        b_eq = np.concatenate(eq_rhs) if eq_rhs else None
        return c, A_ub, b_ub, A_eq, b_eq, bounds

    def solve(self, method: str = "highs") -> LPSolution:
        """Solve and return an :class:`LPSolution`; raises :class:`LPError` on failure."""
        c, A_ub, b_ub, A_eq, b_eq, bounds = self.build()
        res = linprog(
            c,
            A_ub=A_ub,
            b_ub=b_ub,
            A_eq=A_eq,
            b_eq=b_eq,
            bounds=bounds,
            method=method,
        )
        if not res.success:
            raise LPError(f"linprog failed (status={res.status}): {res.message}")

        # Slice the HiGHS marginals back into per-group duals, in call
        # order, sign-normalized to "marginal cost of tightening".
        ub_marg = (
            np.asarray(res.ineqlin.marginals, dtype=float)
            if getattr(res, "ineqlin", None) is not None and A_ub is not None
            else np.zeros(0)
        )
        eq_marg = (
            np.asarray(res.eqlin.marginals, dtype=float)
            if getattr(res, "eqlin", None) is not None and A_eq is not None
            else np.zeros(0)
        )
        row_duals: list[np.ndarray] = []
        off_ub = off_eq = 0
        for sense, rhs, _ in self._row_groups:
            m = rhs.shape[0]
            if sense == "==":
                row_duals.append(eq_marg[off_eq : off_eq + m].copy())
                off_eq += m
            else:
                # Stored as <= rows ('>=' groups negated); in both
                # cases -marginal is the non-negative tightening price.
                row_duals.append(-ub_marg[off_ub : off_ub + m])
                off_ub += m

        bound_duals = np.zeros(self._n_vars)
        if getattr(res, "lower", None) is not None:
            bound_duals = np.asarray(res.lower.marginals, dtype=float) + np.asarray(
                res.upper.marginals, dtype=float
            )

        return LPSolution(
            objective=float(res.fun),
            values=np.asarray(res.x, dtype=float),
            blocks=dict(self._blocks),
            status=res.message,
            row_duals=row_duals,
            bound_duals=bound_duals,
        )
