"""Optimization substrate.

No external modeling language is available offline, so this package
provides the two solver layers everything else is built on:

* :mod:`repro.solvers.lp` — a sparse LP modeling layer over
  ``scipy.optimize.linprog`` (HiGHS), used by the offline optimum, the
  greedy one-shot baseline, FHC/RHC and the pinned-window problems of
  RFHC/RRHC;
* :mod:`repro.solvers.convex` — smooth convex programs with linear
  constraints (the regularized subproblems P2(t)), solved by our own
  log-barrier Newton method (:mod:`repro.solvers.barrier`) with a
  ``scipy.optimize.minimize(trust-constr)`` cross-check backend;
* :mod:`repro.solvers.kkt` — first-order optimality verification used
  in tests;
* :mod:`repro.solvers.backends` — pluggable per-slot solve strategies
  (the coupled ``sequential`` reference and the component-decomposed
  ``batched`` backend), selected by
  :class:`~repro.core.subproblem.SubproblemConfig`.
"""

from repro.solvers.lp import LinearProgram, LPSolution, LPError
from repro.solvers.convex import (
    ConvexSolverError,
    SeparableObjective,
    SmoothConvexProgram,
    SolverOptions,
)
from repro.solvers.kkt import (
    block_first_order_certificates,
    first_order_certificate,
)

__all__ = [
    "LinearProgram",
    "LPSolution",
    "LPError",
    "SmoothConvexProgram",
    "SeparableObjective",
    "SolverOptions",
    "ConvexSolverError",
    "first_order_certificate",
    "block_first_order_certificates",
]
