"""repro — Smoothed Online Resource Allocation in Multi-Tier Distributed Cloud Networks.

A from-scratch reproduction of Jiao, Tulino, Llorca, Jin & Sala's
regularization-based online resource-allocation system:

* :mod:`repro.model` — the two-tier cloud network model (Section II);
* :mod:`repro.core` — the regularized online algorithm, its
  closed-form single-resource special case, and competitive-ratio
  formulas (Section III);
* :mod:`repro.prediction` — FHC/RHC baselines and the regularized
  RFHC/RRHC controllers (Section IV);
* :mod:`repro.offline`, :mod:`repro.baselines` — offline optimum,
  greedy one-shot and LCP-M comparators;
* :mod:`repro.workloads`, :mod:`repro.pricing`, :mod:`repro.topology`
  — the evaluation inputs (Section V);
* :mod:`repro.ntier` — the N-tier generalization (Section III-E);
* :mod:`repro.engine` — the shared solve engine every algorithm runs
  on (streaming per-slot API, warm-start reuse, per-step solver
  statistics);
* :mod:`repro.evaluation` — the per-figure experiment registry;
* :mod:`repro.solvers` — the LP and convex-program substrate.

Quickstart
----------
>>> from repro import (build_paper_instance, WikipediaLikeWorkload,
...                    RegularizedOnline, SubproblemConfig)
>>> trace = WikipediaLikeWorkload(horizon=48).generate()
>>> instance = build_paper_instance(trace, k=2, n_tier2=4, n_tier1=6)
>>> trajectory = RegularizedOnline(SubproblemConfig(epsilon=1e-2)).run(instance)
>>> trajectory.run_stats.describe()  # per-step solver statistics
"""

from repro.model import (
    Allocation,
    Cloud,
    CloudNetwork,
    CostBreakdown,
    Instance,
    SLAEdge,
    Trajectory,
    check_trajectory,
    evaluate_cost,
)
from repro.core import (
    RegularizedOnline,
    SingleResourceProblem,
    empirical_ratio,
    single_greedy,
    single_offline_optimal,
    single_online_decay,
    theorem1_ratio,
    vee_workload,
)
from repro.offline import GreedyOneShot, solve_offline
from repro.baselines import LCPM
from repro.prediction import (
    ExactPredictor,
    FixedHorizonControl,
    GaussianNoisePredictor,
    RecedingHorizonControl,
    RegularizedFixedHorizonControl,
    RegularizedRecedingHorizonControl,
)
from repro.workloads import WikipediaLikeWorkload, WorldCupLikeWorkload
from repro.topology import PaperTopologyBuilder, build_paper_instance
from repro.evaluation import ExperimentScale, run_suite
from repro.engine import SlotData, SolveSession, SubproblemConfig

__version__ = "1.0.0"


def __getattr__(name: str):
    if name == "OnlineConfig":
        # Deprecated alias removed after its one-release grace period.
        raise AttributeError(
            "OnlineConfig was removed; use SubproblemConfig "
            "(from repro import SubproblemConfig)"
        )
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "Cloud",
    "CloudNetwork",
    "SLAEdge",
    "Instance",
    "Allocation",
    "Trajectory",
    "CostBreakdown",
    "evaluate_cost",
    "check_trajectory",
    "RegularizedOnline",
    "SubproblemConfig",
    "SlotData",
    "SolveSession",
    "SingleResourceProblem",
    "single_online_decay",
    "single_greedy",
    "single_offline_optimal",
    "vee_workload",
    "theorem1_ratio",
    "empirical_ratio",
    "GreedyOneShot",
    "solve_offline",
    "LCPM",
    "ExactPredictor",
    "GaussianNoisePredictor",
    "FixedHorizonControl",
    "RecedingHorizonControl",
    "RegularizedFixedHorizonControl",
    "RegularizedRecedingHorizonControl",
    "WikipediaLikeWorkload",
    "WorldCupLikeWorkload",
    "PaperTopologyBuilder",
    "build_paper_instance",
    "ExperimentScale",
    "run_suite",
    "__version__",
]
